package experiments

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/oodb"
	"repro/internal/shard"
	"repro/internal/stats"
)

// Experiment E4 — sharded serving throughput. E2 measured the
// single-engine serving path under concurrent workers; E4 measures a
// sharded serving tier's mix — batches of value probes, by-OID gets,
// and routed writes — against OID-hash-partitioned deployments of 1,
// 2, 4 and 8 shards, with a direct single-engine baseline at every
// worker count. Every deployment serves the identical logical dataset —
// the same fixed cohorts, laid down whole in one store for the baseline
// and spread across the shard stores otherwise (see nCohorts) — so a
// cell isolates what partitioning costs and buys per operation class:
// by-OID gets and writes route to
// exactly one shard (parity per operation, and each shard has its own
// write lock — the axis that scales with cores); value probes have no
// OID to hash, so they fan out to every shard and pay one index
// descent per non-matching shard — the measured fan-out tax that a
// partition-pruning summary would attack. Workers drive probes in
// batches so the per-batch fan-out is amortized the way a serving tier
// would batch it. On a single-core host the expected shape is: the
// one-shard deployment at parity with the engine (the facade adds no
// goroutines there), routed operations at parity at every shard count,
// and fanned value reads paying the descent tax with no parallelism to
// buy it back; on multi-core hosts the same fan-out runs one goroutine
// per shard and the write locks partition.

// ShardPoint is one measured (configuration, shards, workers) cell.
type ShardPoint struct {
	// Config is "engine" for the direct single-engine baseline (the E2
	// serving path) or "sharded" for a shard.DB deployment.
	Config string `json:"config"`
	// Shards is the shard count (1 for the engine baseline).
	Shards  int     `json:"shards"`
	Workers int     `json:"workers"`
	Ops     int     `json:"ops"`
	Elapsed float64 `json:"elapsed_sec"`
	// OpsPerSec counts probes and writes (one batch = BatchSize probes).
	OpsPerSec float64 `json:"ops_per_sec"`
	// P50/P99 are per facade call — one query batch or one write.
	P50Micros  float64 `json:"p50_us"`
	P99Micros  float64 `json:"p99_us"`
	PagesPerOp float64 `json:"pages_per_op"`
	// SpeedupVsEngine is OpsPerSec relative to the engine baseline at
	// the same worker count.
	SpeedupVsEngine float64 `json:"speedup_vs_engine"`
	// ProbeMass is the result mass of a canonical one-probe-per-value
	// sweep against this deployment — identical across deployments,
	// recording that every cell answered the same queries over the same
	// logical data.
	ProbeMass int `json:"probe_mass"`
}

// ShardReport is experiment E4's outcome, serialized to BENCH_shard.json
// by `ixbench -run shard`.
type ShardReport struct {
	Host         HostInfo     `json:"host"`
	Seed         int64        `json:"seed"`
	Scale        float64      `json:"scale"`
	Mix          string       `json:"mix"`
	BatchSize    int          `json:"batch_size"`
	OpsPerWorker int          `json:"ops_per_worker"`
	Points       []ShardPoint `json:"points"`
}

// shardBackend abstracts one way of serving the batched mixed workload.
type shardBackend struct {
	queryBatch func(probes []exec.Probe) error
	get        func(oid oodb.OID) error
	ins        func(v oodb.Value) (oodb.OID, error)
	del        func(oid oodb.OID) error
	pages      func() uint64
	// gettable is the by-OID read pool: the Person population, resolved
	// on whichever shard holds each OID.
	gettable []oodb.OID
	// mass is the deployment's canonical probe-sweep result mass — equal
	// across deployments when the dataset is laid down fairly.
	mass int
}

// RunShard measures the engine baseline and each sharded deployment at
// each worker count, driving opsPerWorker operations (batched probes
// plus routed writes) per worker.
func RunShard(seed int64, shardCounts, workerCounts []int, opsPerWorker int) (ShardReport, error) {
	const batchSize = 8
	rep := ShardReport{
		Host:         CollectHost(),
		Seed:         seed,
		Scale:        0.01,
		Mix:          "60% point-probe batches (3:1 Person:Division) / 30% by-OID gets / 5% insert / 5% delete",
		BatchSize:    batchSize,
		OpsPerWorker: opsPerWorker,
	}
	ps := model.Figure7Stats()

	// The optimal configuration for the collected statistics under the
	// Example 5.1 workload — the same selection E2 serves.
	cfg, err := selectServeConfig(seed, ps, rep.Scale)
	if err != nil {
		return rep, err
	}

	// Probe values come from the full leaf-value domain, identical for
	// every backend (the sharded datasets keep the same domain size).
	engineBase := make(map[int]float64)
	run := func(config string, nShards int, build func() (*shardBackend, []oodb.Value, error)) error {
		for _, workers := range workerCounts {
			be, values, err := build()
			if err != nil {
				return err
			}
			pt, err := measureShard(be, values, config, nShards, workers, opsPerWorker, batchSize)
			if err != nil {
				return err
			}
			if config == "engine" {
				engineBase[workers] = pt.OpsPerSec
			}
			if base := engineBase[workers]; base > 0 {
				pt.SpeedupVsEngine = pt.OpsPerSec / base
			}
			rep.Points = append(rep.Points, pt)
		}
		return nil
	}

	if err := run("engine", 1, func() (*shardBackend, []oodb.Value, error) {
		return buildEngineShardBackend(ps, rep.Scale, seed, cfg)
	}); err != nil {
		return rep, err
	}
	for _, n := range shardCounts {
		n := n
		if err := run("sharded", n, func() (*shardBackend, []oodb.Value, error) {
			return buildShardedBackend(ps, rep.Scale, seed, cfg, n)
		}); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// selectServeConfig selects the optimal configuration over collected
// statistics merged with the Figure 7 workload, as E2's optimal backend
// does.
func selectServeConfig(seed int64, assumed *model.PathStats, scale float64) (core.Configuration, error) {
	g, err := gen.Generate(assumed, scale, seed)
	if err != nil {
		return core.Configuration{}, err
	}
	ps, err := stats.Collect(g.Store, g.Path, model.PaperParams())
	if err != nil {
		return core.Configuration{}, err
	}
	for l := 1; l <= ps.Len(); l++ {
		copy(ps.Level(l).Loads, assumed.Level(l).Loads)
	}
	res, _, err := core.Select(ps, cost.Organizations)
	if err != nil {
		return core.Configuration{}, err
	}
	return res.Best, nil
}

// nCohorts is the fixed partition granularity of E4's dataset: the same
// nCohorts self-contained cohorts (generated with the same seeds, so
// identical contents) are laid down in every deployment — all in one
// store for the engine baseline, spread round-robin across N stores for
// an N-shard deployment. Every deployment therefore serves the same
// logical data and the same probe stream returns the same result mass
// (recorded as probe_mass in the report), so measured differences are
// deployment effects, not dataset effects. Must be a multiple of every
// measured shard count.
const nCohorts = 8

// cohortStats returns one cohort's statistics: the Figure 7 shape with
// per-class cardinalities divided by the cohort count and distinct
// counts capped at what the smaller population admits.
func cohortStats() *model.PathStats {
	part := model.Figure7Stats()
	for l := 1; l <= part.Len(); l++ {
		ls := part.Level(l)
		for i := range ls.Classes {
			cs := &ls.Classes[i]
			cs.N /= float64(nCohorts)
			if inst := cs.N * cs.NIN; cs.D > inst {
				cs.D = inst
			}
		}
	}
	return part
}

// generateCohorts lays the nCohorts cohorts down across the given
// stores round-robin (cohort j into store j mod len(stores)), returning
// the probe-value domain and the Person population.
func generateCohorts(stores []*oodb.Store, scale float64, seed int64) ([]oodb.Value, []oodb.OID, error) {
	part := cohortStats()
	var values []oodb.Value
	var persons []oodb.OID
	for j := 0; j < nCohorts; j++ {
		g, err := gen.GenerateShardIn(stores[j%len(stores)], part, scale, seed+int64(j), nCohorts)
		if err != nil {
			return nil, nil, err
		}
		if len(g.EndValues) > len(values) {
			values = g.EndValues // every cohort draws from this same full-width domain
		}
		persons = append(persons, g.ByClass["Person"]...)
	}
	return values, persons, nil
}

// probeMass sweeps one whole-path probe per domain value and sums the
// result sizes — the fairness check that every deployment answers the
// same queries with the same mass.
func probeMass(queryBatch func([]exec.Probe) ([][]oodb.OID, error), values []oodb.Value) (int, error) {
	probes := make([]exec.Probe, len(values))
	for i, v := range values {
		probes[i] = exec.Probe{Value: v, TargetClass: "Person"}
	}
	res, err := queryBatch(probes)
	if err != nil {
		return 0, err
	}
	var mass int
	for _, r := range res {
		mass += len(r)
	}
	return mass, nil
}

// buildEngineShardBackend is the direct single-engine baseline: all
// cohorts in one store, one engine, batches through engine.QueryBatch —
// the E2 serving path driven in batches.
func buildEngineShardBackend(ps *model.PathStats, scale float64, seed int64, cfg core.Configuration) (*shardBackend, []oodb.Value, error) {
	st, err := oodb.NewStore(ps.Path.Schema(), ps.Params.PageSize)
	if err != nil {
		return nil, nil, err
	}
	values, persons, err := generateCohorts([]*oodb.Store{st}, scale, seed)
	if err != nil {
		return nil, nil, err
	}
	e, err := engine.New(st, ps.Path, cfg, ps.Params.PageSize, engine.Options{})
	if err != nil {
		return nil, nil, err
	}
	mass, err := probeMass(e.QueryBatch, values)
	if err != nil {
		return nil, nil, err
	}
	e.ResetStats()
	st.Pager().ResetStats()
	return &shardBackend{
		queryBatch: func(probes []exec.Probe) error {
			_, err := e.QueryBatch(probes)
			return err
		},
		get: func(oid oodb.OID) error {
			_, err := st.Get(oid)
			return err
		},
		ins: func(v oodb.Value) (oodb.OID, error) {
			return e.Insert("Division", map[string][]oodb.Value{"name": {v}})
		},
		del: func(oid oodb.OID) error { return e.Delete(oid) },
		pages: func() uint64 {
			return e.IndexStats().Accesses() + st.Pager().Stats().Accesses()
		},
		gettable: persons,
		mass:     mass,
	}, values, nil
}

// buildShardedBackend deploys the same cohorts across nShards stores
// and serves through the shard.DB facade.
func buildShardedBackend(ps *model.PathStats, scale float64, seed int64, cfg core.Configuration, nShards int) (*shardBackend, []oodb.Value, error) {
	if nCohorts%nShards != 0 {
		return nil, nil, fmt.Errorf("experiments: shard count %d does not divide the %d-cohort dataset", nShards, nCohorts)
	}
	stores, err := shard.NewStores(ps.Path.Schema(), ps.Params.PageSize, nShards)
	if err != nil {
		return nil, nil, err
	}
	values, persons, err := generateCohorts(stores, scale, seed)
	if err != nil {
		return nil, nil, err
	}
	db, err := shard.Open(stores, ps.Path, cfg, ps.Params.PageSize, shard.Options{})
	if err != nil {
		return nil, nil, err
	}
	mass, err := probeMass(db.QueryBatch, values)
	if err != nil {
		return nil, nil, err
	}
	db.ResetStats()
	for i := 0; i < db.NumShards(); i++ {
		db.Store(i).Pager().ResetStats()
	}
	return &shardBackend{
		queryBatch: func(probes []exec.Probe) error {
			_, err := db.QueryBatch(probes)
			return err
		},
		get: func(oid oodb.OID) error {
			_, err := db.Get(oid)
			return err
		},
		ins: func(v oodb.Value) (oodb.OID, error) {
			return db.Insert("Division", map[string][]oodb.Value{"name": {v}})
		},
		del: func(oid oodb.OID) error { return db.Delete(oid) },
		pages: func() uint64 {
			total := db.IndexStats().Accesses()
			for i := 0; i < db.NumShards(); i++ {
				total += db.Store(i).Pager().Stats().Accesses()
			}
			return total
		},
		gettable: persons,
		mass:     mass,
	}, values, nil
}

// measureShard drives the batched mixed workload from `workers`
// goroutines: 60% of iterations issue a batch of batchSize point probes
// (3:1 Person whole-path to Division ending-level, fanned across
// shards), 30% a run of batchSize by-OID gets (each routed to one
// shard), 5% insert, 5% delete. Ops counts probes, gets and writes;
// latencies are per call (one batch, one get run, or one write).
func measureShard(be *shardBackend, values []oodb.Value, config string, nShards, workers, opsPerWorker, batchSize int) (ShardPoint, error) {
	pt := ShardPoint{Config: config, Shards: nShards, Workers: workers, ProbeMass: be.mass}
	startPages := be.pages()
	iters := opsPerWorker / batchSize
	if iters < 20 {
		iters = 20
	}
	lats := make([][]time.Duration, workers)
	errs := make([]error, workers)
	opsDone := make([]int, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lat := make([]time.Duration, 0, iters)
			probes := make([]exec.Probe, batchSize)
			var pending []oodb.OID
			for i := 0; i < iters; i++ {
				v := values[(w*7919+i)%len(values)]
				t0 := time.Now()
				var err error
				switch r := i % 20; {
				case r == 9: // 5% inserts
					var oid oodb.OID
					oid, err = be.ins(v)
					if err == nil {
						pending = append(pending, oid)
					}
					opsDone[w]++
				case r == 19 && len(pending) > 0: // 5% deletes
					err = be.del(pending[len(pending)-1])
					pending = pending[:len(pending)-1]
					opsDone[w]++
				case r%3 == 0: // ~30% by-OID get runs, routed per OID
					for j := 0; j < batchSize && err == nil; j++ {
						err = be.get(be.gettable[(w*7919+i*batchSize+j)%len(be.gettable)])
					}
					opsDone[w] += batchSize
				default: // ~60% point-probe batches, fanned across shards
					for j := range probes {
						pv := values[(w*7919+i*batchSize+j)%len(values)]
						if j%4 == 3 {
							probes[j] = exec.Probe{Value: pv, TargetClass: "Division"}
						} else {
							probes[j] = exec.Probe{Value: pv, TargetClass: "Person"}
						}
					}
					err = be.queryBatch(probes)
					opsDone[w] += batchSize
				}
				lat = append(lat, time.Since(t0))
				if err != nil {
					errs[w] = fmt.Errorf("experiments: %s/%d shards worker %d iter %d: %v", config, nShards, w, i, err)
					return
				}
			}
			lats[w] = lat
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return pt, err
		}
	}
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for _, n := range opsDone {
		pt.Ops += n
	}
	pt.Elapsed = elapsed.Seconds()
	pt.OpsPerSec = float64(pt.Ops) / elapsed.Seconds()
	pt.P50Micros = float64(all[len(all)/2].Microseconds())
	pt.P99Micros = float64(all[len(all)*99/100].Microseconds())
	pt.PagesPerOp = float64(be.pages()-startPages) / float64(pt.Ops)
	return pt, nil
}

// Render returns the report as text.
func (r ShardReport) Render() string {
	t := NewTable(fmt.Sprintf("E4 — sharded serving throughput (%s, batch=%d)", r.Mix, r.BatchSize),
		"config", "shards", "workers", "ops", "ops/sec", "p50 µs", "p99 µs", "pages/op", "vs engine")
	for _, p := range r.Points {
		t.AddRow(p.Config, p.Shards, p.Workers, p.Ops,
			fmt.Sprintf("%.0f", p.OpsPerSec),
			fmt.Sprintf("%.1f", p.P50Micros),
			fmt.Sprintf("%.1f", p.P99Micros),
			fmt.Sprintf("%.2f", p.PagesPerOp),
			fmt.Sprintf("%.2fx", p.SpeedupVsEngine))
	}
	return t.Render()
}
