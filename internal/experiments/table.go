// Package experiments regenerates every figure and table of the paper's
// evaluation, plus the ablations documented in DESIGN.md: the Figure 6
// walkthrough, the Figure 7/8 cost matrix and optimal configuration of
// Example 5.1, the Section 5 complexity claims, the analytic-vs-measured
// validation of the cost model, and workload/shape sweeps. Each experiment
// returns a typed report with a text rendering; DESIGN.md §6 indexes the
// paper-vs-measured record.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a minimal text-table renderer for experiment reports.
type Table struct {
	Title   string
	Header  []string
	RowData [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.RowData = append(t.RowData, row)
}

// Render returns the table as aligned text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.RowData {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.RowData {
		writeRow(row)
	}
	return b.String()
}
