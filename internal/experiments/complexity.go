package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/cost"
)

// ComplexityPoint is one path length of experiment C1.
type ComplexityPoint struct {
	N                   int
	MatrixCells         int // 3 * n(n+1)/2 (Section 5)
	TotalConfigurations int // 2^(n-1)
	BnBEvaluated        int // configurations evaluated by Opt_Ind_Con
	BnBPruned           int
	ExhaustiveEvaluated int
	DPEvaluated         int // min-cost cells consulted by the DP
	Agree               bool
}

// ComplexityReport verifies the Section 5 complexity claims on random cost
// matrices: the matrix has 3·n(n+1)/2 cells, exhaustive recombination is
// 2^(n-1), and branch-and-bound evaluates no more (usually far fewer).
type ComplexityReport struct {
	Points []ComplexityPoint
}

// RunComplexity executes experiment C1 over path lengths 2..maxN,
// averaging branch-and-bound work over trials random matrices per length.
func RunComplexity(maxN, trials int, seed int64) ComplexityReport {
	rng := rand.New(rand.NewSource(seed))
	var rep ComplexityReport
	for n := 2; n <= maxN; n++ {
		var pt ComplexityPoint
		pt.N = n
		pt.MatrixCells = 3 * n * (n + 1) / 2
		pt.TotalConfigurations = 1 << (n - 1)
		pt.Agree = true
		for tr := 0; tr < trials; tr++ {
			m := randomCostMatrix(n, rng)
			bnb := m.OptIndCon()
			ex := m.Exhaustive()
			dp := m.DP()
			pt.BnBEvaluated += bnb.Stats.Evaluated
			pt.BnBPruned += bnb.Stats.Pruned
			pt.ExhaustiveEvaluated += ex.Stats.Evaluated
			pt.DPEvaluated += dp.Stats.Evaluated
			if diff := bnb.Best.Cost - ex.Best.Cost; diff > 1e-9 || diff < -1e-9 {
				pt.Agree = false
			}
		}
		pt.BnBEvaluated /= trials
		pt.BnBPruned /= trials
		pt.ExhaustiveEvaluated /= trials
		pt.DPEvaluated /= trials
		rep.Points = append(rep.Points, pt)
	}
	return rep
}

// randomCostMatrix builds a matrix with subadditive-ish random costs so
// pruning has realistic structure.
func randomCostMatrix(n int, rng *rand.Rand) *core.Matrix {
	values := make(map[[2]int][]float64)
	for a := 1; a <= n; a++ {
		for b := a; b <= n; b++ {
			base := float64(b-a+1) * (1 + 3*rng.Float64())
			values[[2]int{a, b}] = []float64{
				base * (0.8 + 0.4*rng.Float64()),
				base * (0.8 + 0.4*rng.Float64()),
				base * (0.8 + 0.4*rng.Float64()),
			}
		}
	}
	m, err := core.NewMatrixFromValues(n, cost.Organizations, values)
	if err != nil {
		panic(err)
	}
	return m
}

// Render returns the report text.
func (r ComplexityReport) Render() string {
	t := NewTable("Section 5 complexity — matrix size, search-space size, and work per method (avg over trials)",
		"n", "matrix cells", "2^(n-1)", "BnB evaluated", "BnB pruned", "exhaustive", "DP cells", "agree")
	for _, p := range r.Points {
		t.AddRow(p.N, p.MatrixCells, p.TotalConfigurations, p.BnBEvaluated, p.BnBPruned, p.ExhaustiveEvaluated, p.DPEvaluated, p.Agree)
	}
	var b strings.Builder
	b.WriteString(t.Render())
	fmt.Fprintf(&b, "\nClaim check: a path of length n splits into n(n+1)/2 subpaths priced under 3 organizations;\n")
	fmt.Fprintf(&b, "exhaustive recombination explores 2^(n-1) configurations; branch-and-bound explores fewer.\n")
	return b.String()
}
