package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/oodb"
	"repro/internal/stats"
)

// Experiment E9 — what closing the observe -> select loop buys.
//
// Both arms serve the same database and the same skewed mix: whole-path
// equality probes against the hot end values, with a residual predicate
// stream alongside (planner conjunct leaves answered by navigation).
// The static arm runs the configuration selected from the design-time
// assumption — an update-heavy, mid-path-query workload that never
// materializes — for the whole run. The workload-fed arm starts from
// that same configuration, drives the mix once while the engine records
// it, asks Advise for a workload-weighted selection (the recorded class
// counters and predicate mix re-derive the load triplets, see
// stats.MergeObserved), applies it, and then serves the measured run.
// Operations per second and pages per operation (index plus store)
// quantify what the feedback loop recovered from the wrong assumption.

// FeedbackArm is one measured arm.
type FeedbackArm struct {
	Arm        string  `json:"arm"`
	Config     string  `json:"config"`
	Ops        int     `json:"ops"`
	Elapsed    float64 `json:"elapsed_sec"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	PagesPerOp float64 `json:"pages_per_op"`
}

// FeedbackReport is the E9 artifact (BENCH_feedback.json).
type FeedbackReport struct {
	Host HostInfo `json:"host"`
	Seed int64    `json:"seed"`
	Ops  int      `json:"ops"`
	// StaticConfig is the selection under the design-time assumption;
	// AdvisedConfig is what the workload-fed advice replaced it with.
	StaticConfig  string `json:"static_config"`
	AdvisedConfig string `json:"advised_config"`
	Reconfigured  bool   `json:"reconfigured"`
	// Drift is the total-variation distance between the design-time
	// assumption and the recorded mix at advice time.
	Drift float64       `json:"drift"`
	Arms  []FeedbackArm `json:"arms"`
	// Speedup is fed ops/sec over static ops/sec; PageSaving is the
	// fraction of per-operation page accesses the fed arm eliminated.
	Speedup    float64 `json:"speedup"`
	PageSaving float64 `json:"page_saving"`
}

// Render formats the report as a fixed-width table plus the headline.
func (r FeedbackReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload-fed vs static selection (seed %d, drift %.3f at advice time):\n", r.Seed, r.Drift)
	fmt.Fprintf(&b, "%-14s %8s %12s %12s  %s\n", "arm", "ops", "ops/sec", "pages/op", "configuration")
	for _, a := range r.Arms {
		fmt.Fprintf(&b, "%-14s %8d %12.0f %12.2f  %s\n", a.Arm, a.Ops, a.OpsPerSec, a.PagesPerOp, a.Config)
	}
	fmt.Fprintf(&b, "\nfeedback: %.2fx ops/sec, %.0f%% fewer pages/op\n", r.Speedup, r.PageSaving*100)
	return b.String()
}

// feedbackAssumption is the design-time workload assumption E9 plants:
// update-heavy everywhere, query traffic concentrated mid-path, almost
// none at the path's root — so selection under it avoids a whole-path
// structure. The served mix contradicts it on every count.
func feedbackAssumption() *model.PathStats {
	ps := model.Figure7Stats().Clone()
	for l := 1; l <= ps.Len(); l++ {
		ls := ps.Level(l)
		for x := range ls.Loads {
			switch l {
			case 1:
				ls.Loads[x] = model.Load{Alpha: 0.02, Beta: 0.6, Gamma: 0.6}
			case 2, 3:
				ls.Loads[x] = model.Load{Alpha: 0.5, Beta: 0.4, Gamma: 0.4}
			default:
				ls.Loads[x] = model.Load{Alpha: 0.05, Beta: 0.5, Gamma: 0.5}
			}
		}
	}
	return ps
}

// driveFeedbackMix replays the skewed read-only mix: every operation is
// a whole-path equality probe at the root class for one of the 32 hot
// end values; when recording, each probe lands in the predicate channel
// and every fourth operation also reports a residual conjunct leaf.
func driveFeedbackMix(e *engine.Engine, g *gen.Generated, ops int, record bool) error {
	pathName := e.Path().String()
	values := g.EndValues
	if len(values) > 32 {
		values = values[:32]
	}
	for i := 0; i < ops; i++ {
		if _, err := e.Query(values[i%len(values)], "Person", false); err != nil {
			return err
		}
		if record {
			e.RecordPredicate(pathName, stats.PredEq)
			if i%4 == 0 {
				e.RecordPredicate(pathName, stats.PredResidual)
			}
		}
	}
	return nil
}

// measureFeedbackArm times ops operations of the mix against the
// engine's current configuration, counting index and store page
// accesses from a clean slate.
func measureFeedbackArm(name string, e *engine.Engine, st *oodb.Store, g *gen.Generated, ops int) (FeedbackArm, error) {
	st.Pager().ResetStats()
	e.ResetStats()
	start := time.Now()
	if err := driveFeedbackMix(e, g, ops, false); err != nil {
		return FeedbackArm{}, fmt.Errorf("arm %s: %w", name, err)
	}
	el := time.Since(start).Seconds()
	pages := st.Pager().Stats().Accesses() + e.IndexStats().Accesses()
	return FeedbackArm{
		Arm:        name,
		Config:     e.Config().String(),
		Ops:        ops,
		Elapsed:    el,
		OpsPerSec:  float64(ops) / el,
		PagesPerOp: float64(pages) / float64(ops),
	}, nil
}

// RunFeedback runs experiment E9 with the given per-arm operation count.
func RunFeedback(seed int64, ops int) (FeedbackReport, error) {
	rep := FeedbackReport{Host: CollectHost(), Seed: seed, Ops: ops}
	assumed := feedbackAssumption()
	results, err := core.SelectBatch([]*model.PathStats{assumed}, nil)
	if err != nil {
		return rep, err
	}
	cfgStatic := results[0].Best
	rep.StaticConfig = cfgStatic.String()

	newArmEngine := func() (*engine.Engine, *gen.Generated, error) {
		// Fresh identically-seeded database per arm so neither arm serves
		// pages the other warmed.
		g, err := gen.Generate(model.Figure7Stats(), 0.01, seed)
		if err != nil {
			return nil, nil, err
		}
		e, err := engine.New(g.Store, g.Path, cfgStatic, assumed.Params.PageSize, engine.Options{
			MinOps:  1,
			Assumed: assumed,
		})
		if err != nil {
			return nil, nil, err
		}
		return e, g, nil
	}

	// Static arm: the design-time selection serves the whole run.
	e, g, err := newArmEngine()
	if err != nil {
		return rep, err
	}
	if err := driveFeedbackMix(e, g, ops/4, false); err != nil { // warmup
		return rep, err
	}
	arm, err := measureFeedbackArm("static", e, g.Store, g, ops)
	if err != nil {
		return rep, err
	}
	rep.Arms = append(rep.Arms, arm)

	// Workload-fed arm: observe the mix, take the weighted advice, apply
	// it, then serve the measured run on what the loop selected.
	e, g, err = newArmEngine()
	if err != nil {
		return rep, err
	}
	if err := driveFeedbackMix(e, g, ops/4, true); err != nil { // observation pass
		return rep, err
	}
	adv, err := e.Advise()
	if err != nil {
		return rep, err
	}
	rep.AdvisedConfig = adv.Config.String()
	rep.Drift = adv.Drift
	swap, err := e.ApplyConfiguration(adv.Config)
	if err != nil {
		return rep, err
	}
	rep.Reconfigured = swap.Changed
	arm, err = measureFeedbackArm("workload-fed", e, g.Store, g, ops)
	if err != nil {
		return rep, err
	}
	rep.Arms = append(rep.Arms, arm)

	rep.Speedup = rep.Arms[1].OpsPerSec / rep.Arms[0].OpsPerSec
	if rep.Arms[0].PagesPerOp > 0 {
		rep.PageSaving = 1 - rep.Arms[1].PagesPerOp/rep.Arms[0].PagesPerOp
	}
	return rep, nil
}
