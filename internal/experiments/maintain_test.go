package experiments

import (
	"strings"
	"testing"
)

func TestRunMaintainSmoke(t *testing.T) {
	rep, err := RunMaintain(42, []float64{0.5}, 240)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 3 { // optimal, whole-path-NIX, naive × one read fraction
		t.Fatalf("cells = %d, want 3", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if c.Queries == 0 || c.Updates == 0 {
			t.Errorf("%s: mix not mixed: %d queries / %d updates", c.Config, c.Queries, c.Updates)
		}
		if c.OpsPerSec <= 0 || c.PagesPerOp <= 0 {
			t.Errorf("%s: degenerate measurement: %+v", c.Config, c)
		}
		if c.Config != "naive" {
			if c.UpdatePagesPerOp <= 0 {
				t.Errorf("%s: indexed backend reported free updates", c.Config)
			}
			if c.UpdatesRecorded == 0 {
				t.Errorf("%s: engine recorder saw no updates", c.Config)
			}
		}
	}
	out := rep.Render()
	if !strings.Contains(out, "whole-path-NIX") || !strings.Contains(out, "update pg/op") {
		t.Errorf("render missing expected columns:\n%s", out)
	}
}
