package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/oodb"
	"repro/internal/plan"
	"repro/internal/schema"
	"repro/internal/shard"
)

// Experiment E6 — what the conjunctive planner buys.
//
// Part (a), probe ordering: a two-conjunct predicate pairs a highly
// selective path (R.to.name, ~2000 distinct ending values) with an
// unselective one (R.tag, ~20 distinct values). The planner's
// selectivity ordering probes the selective conjunct first, so the
// galloping intersection and every later probe run against a small
// accumulator; the declared-worst arm forces the opposite order; the
// naive arm evaluates the same predicate by store scans. Pages per
// operation (index plus store) and operations per second quantify the
// gap.
//
// Part (b), shard pruning: an 8-shard database holds per-shard disjoint
// ending-value pools, and the probe stream is skewed to one shard's
// pool — the fleet answering point lookups for values that live on one
// shard. With summaries on, the other seven shards' descents are pruned
// by Bloom/min-max exclusion; the control arm disables pruning. The
// prune rate is pruned descents over the descents the unpruned fan-out
// would have executed for non-matching shards.

// PlanOrderPoint is one part-(a) arm.
type PlanOrderPoint struct {
	Arm        string  `json:"arm"`
	Ops        int     `json:"ops"`
	Elapsed    float64 `json:"elapsed_sec"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	PagesPerOp float64 `json:"pages_per_op"`
	Matches    int     `json:"matches_last"`
}

// PlanPrunePoint is one part-(b) cell.
type PlanPrunePoint struct {
	Shards    int     `json:"shards"`
	Pruning   bool    `json:"pruning"`
	Ops       int     `json:"ops"`
	Elapsed   float64 `json:"elapsed_sec"`
	OpsPerSec float64 `json:"ops_per_sec"`
	Descents  uint64  `json:"descents"`
	Pruned    uint64  `json:"pruned"`
	// PruneRate is pruned / (ops · (shards-1)): the fraction of
	// non-matching shard descents the summaries eliminated.
	PruneRate float64 `json:"prune_rate"`
}

// PlanReport is the E6 artifact (BENCH_plan.json).
type PlanReport struct {
	Host  HostInfo         `json:"host"`
	Seed  int64            `json:"seed"`
	Ops   int              `json:"ops"`
	Order []PlanOrderPoint `json:"order"`
	Prune []PlanPrunePoint `json:"prune"`
}

// Render formats the report as a pair of fixed-width tables.
func (r PlanReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "conjunct ordering (seed %d):\n", r.Seed)
	fmt.Fprintf(&b, "%-16s %8s %12s %12s %8s\n", "arm", "ops", "ops/sec", "pages/op", "matches")
	for _, p := range r.Order {
		fmt.Fprintf(&b, "%-16s %8d %12.0f %12.2f %8d\n", p.Arm, p.Ops, p.OpsPerSec, p.PagesPerOp, p.Matches)
	}
	fmt.Fprintf(&b, "\nshard pruning (skewed point lookups):\n")
	fmt.Fprintf(&b, "%7s %8s %8s %10s %8s %10s %12s\n", "shards", "pruning", "ops", "descents", "pruned", "prunerate", "ops/sec")
	for _, p := range r.Prune {
		fmt.Fprintf(&b, "%7d %8v %8d %10d %8d %10.3f %12.0f\n", p.Shards, p.Pruning, p.Ops, p.Descents, p.Pruned, p.PruneRate, p.OpsPerSec)
	}
	return b.String()
}

// planSchema builds the two-path E6 schema: R(tag, to→M), M(name).
func planSchema() *schema.Schema {
	s := schema.New()
	s.MustAddClass(&schema.Class{Name: "M", Attrs: []schema.Attribute{
		{Name: "name", Kind: schema.Atomic, Domain: "string"},
	}})
	s.MustAddClass(&schema.Class{Name: "R", Attrs: []schema.Attribute{
		{Name: "tag", Kind: schema.Atomic, Domain: "string"},
		{Name: "to", Kind: schema.Ref, Domain: "M"},
	}})
	if err := s.Validate(); err != nil {
		panic("experiments: plan schema invalid: " + err.Error())
	}
	return s
}

// RunPlan runs experiment E6 with the given per-arm operation count.
func RunPlan(seed int64, ops int) (PlanReport, error) {
	rep := PlanReport{Host: CollectHost(), Seed: seed, Ops: ops}
	if err := runPlanOrder(&rep, seed, ops); err != nil {
		return rep, err
	}
	if err := runPlanPrune(&rep, seed, ops); err != nil {
		return rep, err
	}
	return rep, nil
}

func runPlanOrder(rep *PlanReport, seed int64, ops int) error {
	const (
		nM      = 2000 // distinct selective ending values
		nR      = 4000
		nTags   = 20 // distinct unselective values
		pageSz  = 4096
		warmups = 16
	)
	rng := rand.New(rand.NewSource(seed))
	s := planSchema()
	st, err := oodb.NewStore(s, pageSz)
	if err != nil {
		return err
	}
	ms := make([]oodb.OID, nM)
	for i := range ms {
		ms[i], err = st.Insert("M", map[string][]oodb.Value{
			"name": {oodb.StrV(fmt.Sprintf("name-%05d", i))},
		})
		if err != nil {
			return err
		}
	}
	for i := 0; i < nR; i++ {
		_, err = st.Insert("R", map[string][]oodb.Value{
			"tag": {oodb.StrV(fmt.Sprintf("tag-%02d", rng.Intn(nTags)))},
			"to":  {oodb.RefV(ms[rng.Intn(nM)])},
		})
		if err != nil {
			return err
		}
	}
	pName, err := schema.NewPath(s, "R", "to", "name")
	if err != nil {
		return err
	}
	pTag, err := schema.NewPath(s, "R", "tag")
	if err != nil {
		return err
	}
	pl := plan.NewPlanner(st)
	var execs []*exec.Configured
	for _, p := range []*schema.Path{pName, pTag} {
		c, err := exec.NewConfigured(st, p, core.Configuration{
			Assignments: []core.Assignment{{A: 1, B: p.Len(), Org: cost.NIX}},
		}, pageSz)
		if err != nil {
			return err
		}
		if err := pl.Register(p, c, nil); err != nil {
			return err
		}
		execs = append(execs, c)
	}
	// The conjunction, deliberately declared unselective-first: the
	// declared-order arm pays the worst fixed order, the auto arm must
	// discover the better one from observed cardinalities.
	pred := func(i int) plan.Predicate {
		return plan.And(
			plan.Eq(pTag, oodb.StrV(fmt.Sprintf("tag-%02d", i%nTags))),
			plan.Eq(pName, oodb.StrV(fmt.Sprintf("name-%05d", i%nM))),
		)
	}
	for i := 0; i < warmups; i++ {
		if _, err := pl.Query(pred(i), "R", false); err != nil {
			return err
		}
	}
	resetPages := func() {
		st.Pager().ResetStats()
		for _, c := range execs {
			c.ResetStats()
		}
	}
	pages := func() uint64 {
		t := st.Pager().Stats().Accesses()
		for _, c := range execs {
			t += c.IndexStats().Accesses()
		}
		return t
	}
	arms := []struct {
		name string
		run  func(i int) (int, error)
	}{
		{"planner-auto", func(i int) (int, error) {
			r, err := pl.Query(pred(i), "R", false)
			return len(r), err
		}},
		{"declared-worst", func(i int) (int, error) {
			p, err := pl.PlanOpts(pred(i), "R", false, plan.Options{DeclaredOrder: true})
			if err != nil {
				return 0, err
			}
			r, err := p.Execute()
			return len(r), err
		}},
		{"naive-scan", func(i int) (int, error) {
			r, err := plan.NaiveEval(st, pred(i), "R", false)
			return len(r), err
		}},
	}
	for _, arm := range arms {
		// The naive arm re-navigates the store per query; cap its ops to
		// keep E6 smoke-runnable and scale the rates accordingly.
		n := ops
		if arm.name == "naive-scan" && n > 200 {
			n = 200
		}
		resetPages()
		matches := 0
		start := time.Now()
		for i := 0; i < n; i++ {
			m, err := arm.run(i)
			if err != nil {
				return fmt.Errorf("arm %s: %w", arm.name, err)
			}
			matches = m
		}
		el := time.Since(start).Seconds()
		rep.Order = append(rep.Order, PlanOrderPoint{
			Arm:        arm.name,
			Ops:        n,
			Elapsed:    el,
			OpsPerSec:  float64(n) / el,
			PagesPerOp: float64(pages()) / float64(n),
			Matches:    matches,
		})
	}
	return nil
}

func runPlanPrune(rep *PlanReport, seed int64, ops int) error {
	const (
		treesPerShard = 24
		pageSz        = 1024
	)
	s := schema.PaperSchema()
	p := schema.PaperPathOwnsManName()
	cfg := core.Configuration{Assignments: []core.Assignment{{A: 1, B: p.Len(), Org: cost.NIX}}}
	for _, nShards := range []int{1, 4, 8} {
		for _, pruning := range []bool{true, false} {
			db, err := shard.New(s, p, cfg, pageSz, nShards, shard.Options{DisablePruning: !pruning})
			if err != nil {
				return err
			}
			// Disjoint per-shard ending-value pools: shard i's companies
			// are named from pool i only.
			for i := 0; i < nShards; i++ {
				for t := 0; t < treesPerShard; t++ {
					co, err := db.InsertAt(i, "Company", map[string][]oodb.Value{
						"name": {oodb.StrV(fmt.Sprintf("pool%02d-co%03d", i, t))},
					})
					if err != nil {
						return err
					}
					car, err := db.Insert("Vehicle", map[string][]oodb.Value{"man": {oodb.RefV(co)}})
					if err != nil {
						return err
					}
					if _, err := db.Insert("Person", map[string][]oodb.Value{"owns": {oodb.RefV(car)}}); err != nil {
						return err
					}
				}
			}
			// Skewed probe stream: every lookup is for shard 0's pool.
			rng := rand.New(rand.NewSource(seed))
			start := time.Now()
			for i := 0; i < ops; i++ {
				v := oodb.StrV(fmt.Sprintf("pool%02d-co%03d", 0, rng.Intn(treesPerShard)))
				if _, err := db.Query(v, "Person", false); err != nil {
					return err
				}
			}
			el := time.Since(start).Seconds()
			probed, pruned := db.PruneCounters()
			pt := PlanPrunePoint{
				Shards:    nShards,
				Pruning:   pruning,
				Ops:       ops,
				Elapsed:   el,
				OpsPerSec: float64(ops) / el,
				Descents:  probed,
				Pruned:    pruned,
			}
			if nShards > 1 {
				pt.PruneRate = float64(pruned) / float64(ops*(nShards-1))
			}
			rep.Prune = append(rep.Prune, pt)
		}
	}
	return nil
}
