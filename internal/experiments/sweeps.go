package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/model"
	"repro/internal/schema"
)

// WorkloadPoint is one mix of the workload sweep: lambda is the query
// share (1 = pure queries, 0 = pure updates).
type WorkloadPoint struct {
	Lambda float64
	Best   core.Configuration
	// WholeNIX and WholeMX are the whole-path single-index alternatives.
	WholeNIX, WholeMX float64
}

// WorkloadReport is experiment W1: how the optimal configuration shifts as
// the workload moves from query-dominated to update-dominated on the
// Figure 7 statistics.
type WorkloadReport struct {
	Points []WorkloadPoint
}

// RunWorkloadSweep executes experiment W1 with the given mixes.
func RunWorkloadSweep(lambdas []float64) (WorkloadReport, error) {
	var rep WorkloadReport
	for _, lam := range lambdas {
		ps := model.Figure7Stats()
		for l := 1; l <= ps.Len(); l++ {
			ls := ps.Level(l)
			for x := range ls.Loads {
				base := ls.Loads[x]
				ls.Loads[x] = model.Load{
					Alpha: base.Alpha * lam,
					Beta:  base.Beta * (1 - lam),
					Gamma: base.Gamma * (1 - lam),
				}
			}
		}
		m, err := core.NewMatrixFromStats(ps, nil)
		if err != nil {
			return rep, err
		}
		r := m.OptIndCon()
		nix, _ := m.Cell(1, ps.Len(), cost.NIX)
		mx, _ := m.Cell(1, ps.Len(), cost.MX)
		rep.Points = append(rep.Points, WorkloadPoint{Lambda: lam, Best: r.Best, WholeNIX: nix, WholeMX: mx})
	}
	return rep, nil
}

// Render returns the report text.
func (r WorkloadReport) Render() string {
	t := NewTable("Workload sweep — optimal configuration vs query share λ (Figure 7 statistics)",
		"λ (query share)", "optimal configuration", "cost", "whole NIX", "whole MX")
	for _, p := range r.Points {
		t.AddRow(fmt.Sprintf("%.2f", p.Lambda), p.Best.String(), p.Best.Cost, p.WholeNIX, p.WholeMX)
	}
	var b strings.Builder
	b.WriteString(t.Render())
	b.WriteString("\nNIX-dominated configurations win query-heavy mixes; update-heavy mixes favour\n")
	b.WriteString("finer splits with cheap-to-maintain component indexes.\n")
	return b.String()
}

// ShapePoint is one path length of the shape sweep.
type ShapePoint struct {
	N      int
	Best   core.Configuration
	BnB    core.SelectionStats
	Orgs   string  // organizations of the optimal configuration
	Whole  float64 // best whole-path single index
	Degree int
}

// ShapeReport is experiment S1: selection behaviour over synthetic chain
// paths of growing length.
type ShapeReport struct {
	Points []ShapePoint
}

// ChainStats builds a synthetic chain path C1 -> ... -> Cn with uniform
// statistics: every class has nObj objects, d distinct values and the
// given fan-out; every class carries the same balanced load.
func ChainStats(n int, nObj, d, fan float64, load model.Load, params model.Params) (*model.PathStats, error) {
	if n < 1 {
		return nil, fmt.Errorf("experiments: chain length %d", n)
	}
	s := schema.New()
	names := make([]string, n+1)
	for i := range names {
		names[i] = fmt.Sprintf("C%d", i+1)
	}
	for i := 0; i <= n; i++ {
		attrs := []schema.Attribute{{Name: "v", Kind: schema.Atomic, Domain: "string"}}
		if i < n {
			attrs = append(attrs, schema.Attribute{Name: "next", Kind: schema.Ref, Domain: names[i+1], MultiValued: fan > 1})
		}
		s.MustAddClass(&schema.Class{Name: names[i], Attrs: attrs})
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	attrs := make([]string, 0, n)
	for i := 0; i < n-1; i++ {
		attrs = append(attrs, "next")
	}
	attrs = append(attrs, "v")
	p, err := schema.NewPath(s, names[0], attrs...)
	if err != nil {
		return nil, err
	}
	ps := model.NewPathStats(p, params)
	for l := 1; l <= n; l++ {
		nin := fan
		if l == n {
			nin = 1
		}
		ps.MustSet(l, model.ClassStats{Class: names[l-1], N: nObj, D: d, NIN: nin}, load)
	}
	return ps, nil
}

// RunShapeSweep executes experiment S1 for lengths 2..maxN.
func RunShapeSweep(maxN int) (ShapeReport, error) {
	var rep ShapeReport
	for n := 2; n <= maxN; n++ {
		ps, err := ChainStats(n, 20000, 2000, 2, model.Load{Alpha: 0.3, Beta: 0.1, Gamma: 0.1}, model.PaperParams())
		if err != nil {
			return rep, err
		}
		m, err := core.NewMatrixFromStats(ps, nil)
		if err != nil {
			return rep, err
		}
		r := m.OptIndCon()
		_, whole := m.MinCost(1, n)
		var orgs []string
		for _, a := range r.Best.Assignments {
			orgs = append(orgs, a.Org.String())
		}
		rep.Points = append(rep.Points, ShapePoint{
			N: n, Best: r.Best, BnB: r.Stats,
			Orgs: strings.Join(orgs, "+"), Whole: whole, Degree: r.Best.Degree(),
		})
	}
	return rep, nil
}

// Render returns the report text.
func (r ShapeReport) Render() string {
	t := NewTable("Shape sweep — selection on uniform chain paths of growing length",
		"n", "optimal cost", "degree", "organizations", "best whole-path", "BnB evaluated", "2^(n-1)")
	for _, p := range r.Points {
		t.AddRow(p.N, p.Best.Cost, p.Degree, p.Orgs, p.Whole, p.BnB.Evaluated, p.BnB.TotalConfigurations)
	}
	return t.Render()
}
