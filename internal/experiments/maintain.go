package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/oodb"
	"repro/internal/stats"
)

// Experiment E3 — measured index maintenance cost. The paper's selection
// objective balances retrieval cost against maintenance cost, and the
// advisor literature (AIM, CoPhy) warns that index recommendations are
// only trustworthy when write amplification is measured rather than
// modeled. E3 closes that loop for the update path: a single driver runs
// mixed read/update workloads — point queries interleaved with in-place
// reference re-links and ending-value changes — against the optimal
// configuration, the whole-path-NIX strawman and the unindexed store,
// at several read fractions, and reports realized ops/sec plus pages/op
// split by operation kind. The query results themselves are covered by
// the differential maintenance tests; here only the realized cost is
// recorded.

// MaintainPoint is one measured (configuration, read-fraction) cell.
type MaintainPoint struct {
	Config   string  `json:"config"`
	ReadFrac float64 `json:"read_frac"`
	Ops      int     `json:"ops"`
	Queries  int     `json:"queries"`
	Updates  int     `json:"updates"`
	Elapsed  float64 `json:"elapsed_sec"`
	// OpsPerSec is the realized throughput of the whole mix.
	OpsPerSec float64 `json:"ops_per_sec"`
	// PagesPerOp is the page-access cost of the whole mix; QueryPages and
	// UpdatePages split it by operation kind, so the maintenance half of
	// the paper's objective is visible on its own.
	PagesPerOp        float64 `json:"pages_per_op"`
	QueryPagesPerOp   float64 `json:"query_pages_per_op"`
	UpdatePagesPerOp  float64 `json:"update_pages_per_op"`
	UpdatesRecorded   uint64  `json:"updates_recorded"`
	DriftAfterTraffic float64 `json:"drift_after_traffic"`
}

// MaintainReport is experiment E3's outcome, serialized to
// BENCH_maintain.json by `ixbench -run maintain`.
type MaintainReport struct {
	Host  HostInfo        `json:"host"`
	Seed  int64           `json:"seed"`
	Scale float64         `json:"scale"`
	Mix   string          `json:"mix"`
	Ops   int             `json:"ops_per_cell"`
	Cells []MaintainPoint `json:"cells"`
}

// maintainBackend abstracts one way of serving the mixed read/update
// workload, with its cumulative page counter and workload introspection.
type maintainBackend struct {
	name   string
	query  func(v oodb.Value, class string) error
	relink func(veh, comp oodb.OID) error
	rekey  func(div oodb.OID, v oodb.Value) error
	pages  func() uint64
	load   func() (updates uint64, drift float64)
}

// RunMaintain generates one database per (backend, read-fraction) cell —
// same seed, identical contents — and measures the realized cost of the
// mixed workload.
func RunMaintain(seed int64, readFracs []float64, ops int) (MaintainReport, error) {
	rep := MaintainReport{
		Host:  CollectHost(),
		Seed:  seed,
		Scale: 0.01,
		Mix:   "reads: 2/3 Person + 1/3 Division point queries; writes: 1/2 Vehicle.man re-links + 1/2 Division.name value changes",
		Ops:   ops,
	}
	ps := model.Figure7Stats()
	backends := []struct {
		name  string
		build func(g *gen.Generated) (*maintainBackend, error)
		ops   int
	}{
		{"optimal", buildOptimalMaintainBackend, ops},
		{"whole-path-NIX", buildWholeNIXMaintainBackend, ops},
		// The naive baseline navigates per query and pays nothing per
		// update beyond the store write; it is orders of magnitude slower
		// on reads, so it gets a reduced op count.
		{"naive", buildNaiveMaintainBackend, ops / 20},
	}
	for _, b := range backends {
		for _, rf := range readFracs {
			g, err := gen.Generate(ps, rep.Scale, seed)
			if err != nil {
				return rep, err
			}
			be, err := b.build(g)
			if err != nil {
				return rep, fmt.Errorf("experiments: build %s: %v", b.name, err)
			}
			n := b.ops
			if n < 1 {
				n = 1
			}
			pt, err := measureMaintain(g, be, rf, n)
			if err != nil {
				return rep, err
			}
			rep.Cells = append(rep.Cells, pt)
		}
	}
	return rep, nil
}

func buildOptimalMaintainBackend(g *gen.Generated) (*maintainBackend, error) {
	ps, err := stats.Collect(g.Store, g.Path, model.PaperParams())
	if err != nil {
		return nil, err
	}
	assumed := model.Figure7Stats()
	for l := 1; l <= ps.Len(); l++ {
		copy(ps.Level(l).Loads, assumed.Level(l).Loads)
	}
	res, _, err := core.Select(ps, cost.Organizations)
	if err != nil {
		return nil, err
	}
	return buildEngineMaintainBackend(g, res.Best, "optimal "+res.Best.String(), assumed)
}

func buildWholeNIXMaintainBackend(g *gen.Generated) (*maintainBackend, error) {
	cfg := core.Configuration{Assignments: []core.Assignment{
		{A: 1, B: g.Path.Len(), Org: cost.NIX},
	}}
	return buildEngineMaintainBackend(g, cfg, "whole-path-NIX", model.Figure7Stats())
}

func buildEngineMaintainBackend(g *gen.Generated, cfg core.Configuration, name string, assumed *model.PathStats) (*maintainBackend, error) {
	e, err := engine.New(g.Store, g.Path, cfg, model.PaperParams().PageSize, engine.Options{Assumed: assumed})
	if err != nil {
		return nil, err
	}
	e.ResetStats()
	g.Store.Pager().ResetStats()
	return &maintainBackend{
		name: name,
		query: func(v oodb.Value, class string) error {
			_, err := e.Query(v, class, false)
			return err
		},
		relink: func(veh, comp oodb.OID) error {
			return e.Update(veh, map[string][]oodb.Value{"man": {oodb.RefV(comp)}})
		},
		rekey: func(div oodb.OID, v oodb.Value) error {
			return e.Update(div, map[string][]oodb.Value{"name": {v}})
		},
		pages: func() uint64 {
			return e.IndexStats().Accesses() + g.Store.Pager().Stats().Accesses()
		},
		load: func() (uint64, float64) {
			var u uint64
			for _, c := range e.WorkloadSnapshot().Classes {
				u += c.Updates
			}
			return u, e.Drift()
		},
	}, nil
}

func buildNaiveMaintainBackend(g *gen.Generated) (*maintainBackend, error) {
	g.Store.Pager().ResetStats()
	return &maintainBackend{
		name: "naive",
		query: func(v oodb.Value, class string) error {
			_, err := exec.NaiveQuery(g.Store, g.Path, v, class, false)
			return err
		},
		relink: func(veh, comp oodb.OID) error {
			_, _, err := g.Store.Update(veh, map[string][]oodb.Value{"man": {oodb.RefV(comp)}})
			return err
		},
		rekey: func(div oodb.OID, v oodb.Value) error {
			_, _, err := g.Store.Update(div, map[string][]oodb.Value{"name": {v}})
			return err
		},
		pages: func() uint64 { return g.Store.Pager().Stats().Accesses() },
		load:  func() (uint64, float64) { return 0, 0 },
	}, nil
}

// measureMaintain drives ops operations at the given read fraction from a
// single driver (maintenance cost per op is the object of measurement;
// concurrency curves are E2's subject) and splits page accounting by
// operation kind.
func measureMaintain(g *gen.Generated, be *maintainBackend, readFrac float64, ops int) (MaintainPoint, error) {
	pt := MaintainPoint{Config: be.name, ReadFrac: readFrac, Ops: ops}
	vehicles := append(append(append([]oodb.OID(nil), g.ByClass["Vehicle"]...),
		g.ByClass["Bus"]...), g.ByClass["Truck"]...)
	companies := g.ByClass["Company"]
	divisions := g.ByClass["Division"]
	if len(vehicles) == 0 || len(companies) == 0 || len(divisions) == 0 {
		return pt, fmt.Errorf("experiments: generated store too small for the maintain mix")
	}
	var queryPages, updatePages uint64
	start := time.Now()
	for i := 0; i < ops; i++ {
		v := g.EndValues[(i*7919)%len(g.EndValues)]
		before := be.pages()
		// Deterministic interleave matching the read fraction.
		read := float64((i*131)%1000) < readFrac*1000
		var err error
		if read {
			pt.Queries++
			if i%3 == 0 {
				err = be.query(v, "Division")
			} else {
				err = be.query(v, "Person")
			}
		} else {
			pt.Updates++
			if i%2 == 0 {
				err = be.relink(vehicles[(i*31)%len(vehicles)], companies[(i*17)%len(companies)])
			} else {
				err = be.rekey(divisions[(i*13)%len(divisions)], v)
			}
		}
		if err != nil {
			return pt, fmt.Errorf("experiments: %s op %d: %v", be.name, i, err)
		}
		if read {
			queryPages += be.pages() - before
		} else {
			updatePages += be.pages() - before
		}
	}
	elapsed := time.Since(start)
	pt.Elapsed = elapsed.Seconds()
	pt.OpsPerSec = float64(ops) / elapsed.Seconds()
	pt.PagesPerOp = float64(queryPages+updatePages) / float64(ops)
	if pt.Queries > 0 {
		pt.QueryPagesPerOp = float64(queryPages) / float64(pt.Queries)
	}
	if pt.Updates > 0 {
		pt.UpdatePagesPerOp = float64(updatePages) / float64(pt.Updates)
	}
	pt.UpdatesRecorded, pt.DriftAfterTraffic = be.load()
	return pt, nil
}

// Render returns the report as text.
func (r MaintainReport) Render() string {
	t := NewTable("E3 — maintenance cost under mixed read/update traffic",
		"config", "read%", "ops", "ops/sec", "pages/op", "query pg/op", "update pg/op", "drift")
	for _, p := range r.Cells {
		t.AddRow(p.Config, fmt.Sprintf("%.0f%%", p.ReadFrac*100), p.Ops,
			fmt.Sprintf("%.0f", p.OpsPerSec),
			fmt.Sprintf("%.2f", p.PagesPerOp),
			fmt.Sprintf("%.2f", p.QueryPagesPerOp),
			fmt.Sprintf("%.2f", p.UpdatePagesPerOp),
			fmt.Sprintf("%.2f", p.DriftAfterTraffic))
	}
	return t.Render()
}
