package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/netclient"
	"repro/internal/netserver"
	"repro/internal/oodb"
	"repro/internal/plan"
	"repro/internal/wire"
)

// Experiment E8 — planning over the wire. PR 7's planner compiles
// predicate trees into selectivity-ordered probe plans; the serving
// tier's claim for this release is that shipping the tree instead of
// its probes keeps that whole optimization server-side: a pipelined
// client sends one canonical encoding per query, and the dispatcher
// coalesces identical trees arriving in one window into a single
// planner descent whose answer fans back out to every caller.
//
// E8 measures that claim at 1/8/64 connections through four arms — the
// embedded planner (Plan+Execute in process, no socket: the ceiling),
// the full networked path (pipelined clients, coalescing dispatcher),
// per-request dispatch (pipelined clients but every tree planned and
// executed alone — what a server without predicate coalescing does),
// and the classic one-request-per-round-trip client. The workload draws
// from a bounded pool of Eq and Or trees, as real applications do
// (queries are parameterized, parameters repeat), so identical trees
// genuinely collide in coalescing windows.
//
// Two mixes bound the regimes, mirroring E7. The wholepath mix targets
// "Person" through the full four-level descent: every plan execution
// hauls hundreds of owners, the planner does real work, and the
// interesting number is the socket tax against the embedded ceiling.
// The endpoint mix targets "Division" at the ending level: an index
// probe returning an OID or two, so the wire and the per-request
// planning overhead are the whole story — this is where shared descents
// must beat per-request dispatch (the release's acceptance ratio).

// NetPlanPoint is one measured (mix, arm, connections) cell.
type NetPlanPoint struct {
	Mix       string  `json:"mix"`
	Arm       string  `json:"arm"`
	Conns     int     `json:"conns"`
	Ops       int     `json:"ops"`
	Elapsed   float64 `json:"elapsed_sec"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Micros float64 `json:"p50_us"`
	P99Micros float64 `json:"p99_us"`
	// Requests/Descents describe what the dispatcher's predicate path
	// did for the networked arms (zero for the embedded arm): how many
	// predicate requests arrived, and how many planner descents they
	// cost after coalescing dedup. Descents == Requests means no
	// sharing; the gap is the dividend.
	Requests uint64 `json:"pred_requests,omitempty"`
	Descents uint64 `json:"pred_descents,omitempty"`
}

// NetPlanRatios are the report's acceptance numbers. Each is taken on
// the mix where the claim is load-bearing: the per-request-dispatch
// comparison on the endpoint mix (planning overhead and the wire
// dominate there — that is what sharing a descent must recover), the
// socket tax on the wholepath mix (the planner does real work there).
type NetPlanRatios struct {
	// PipelineOverPerRequest64 is coalesced predicate dispatch over
	// per-request dispatch at 64 connections, both pipelined, endpoint
	// mix — the release gate: shipping trees only pays if the server
	// shares descents across the window.
	PipelineOverPerRequest64 float64 `json:"pipeline_over_per_request_at_64_conns"`
	// PipelineOverSync8 is pipelined+coalesced over one-request-per-RTT
	// at 8 connections, endpoint mix.
	PipelineOverSync8 float64 `json:"pipeline_over_sync_at_8_conns"`
	// EmbeddedOverNet64 is the embedded planner over the networked
	// pipelined path at 64 connections, wholepath mix — the socket tax
	// on a working predicate path.
	EmbeddedOverNet64 float64 `json:"embedded_over_net_at_64_conns"`
	// DescentShare64 is Descents/Requests of the pipelined arm at 64
	// connections on the endpoint mix: the fraction of requests that
	// actually cost a planner descent (lower is better sharing).
	DescentShare64 float64 `json:"descent_share_at_64_conns"`
}

// NetPlanReport is experiment E8's outcome, serialized to
// BENCH_netplan.json by `ixbench -run netplan`.
type NetPlanReport struct {
	Host       HostInfo       `json:"host"`
	Seed       int64          `json:"seed"`
	Scale      float64        `json:"scale"`
	Depth      int            `json:"pipeline_depth"`
	PoolSize   int            `json:"predicate_pool_size"`
	OpsPerConn int            `json:"ops_per_conn"`
	Points     []NetPlanPoint `json:"points"`
	Ratios     NetPlanRatios  `json:"ratios"`
}

const netplanPoolSize = 16

// netplanPools builds the bounded predicate pool in both forms: the
// wire trees clients ship (path id 1) and the structurally identical
// plan trees the embedded arm hands its planner. Half Eq leaves, half
// two-way Ors, parameterized over the generated end values.
func netplanPools(g *gen.Generated) ([]wire.PredNode, []plan.Predicate) {
	val := func(i int) oodb.Value { return g.EndValues[(i*37)%len(g.EndValues)] }
	wires := make([]wire.PredNode, 0, netplanPoolSize)
	plans := make([]plan.Predicate, 0, netplanPoolSize)
	for i := 0; i < netplanPoolSize/2; i++ {
		wires = append(wires, wire.EqPred(1, val(i)))
		plans = append(plans, plan.Eq(g.Path, val(i)))
	}
	for i := 0; i < netplanPoolSize/2; i++ {
		a, b := val(i*2+8), val(i*2+9)
		wires = append(wires, wire.OrPred(wire.EqPred(1, a), wire.EqPred(1, b)))
		plans = append(plans, plan.Or(plan.Eq(g.Path, a), plan.Eq(g.Path, b)))
	}
	return wires, plans
}

// netplanTarget maps a mix to its target class: the full-path starting
// class (planner-bound) or the ending level (wire-bound).
func netplanTarget(mix string) string {
	if mix == "wholepath" {
		return "Person"
	}
	return "Division"
}

// RunNetPlan measures the four predicate-serving arms at each
// connection count on both mixes over a bounded predicate pool.
func RunNetPlan(seed int64, connCounts []int, opsPerConn int) (NetPlanReport, error) {
	rep := NetPlanReport{
		Host:       CollectHost(),
		Seed:       seed,
		Scale:      0.01,
		Depth:      netDepth,
		PoolSize:   netplanPoolSize,
		OpsPerConn: opsPerConn,
	}
	arms := []struct {
		name string
		run  func(g *gen.Generated, e *engine.Engine, mix string, conns, ops int) (NetPlanPoint, error)
	}{
		{"embedded", runEmbeddedPlanArm},
		{"net-pipelined", mkNetPlanArm(netDepth, false)},
		{"net-perrequest", mkNetPlanArm(netDepth, true)},
		{"net-sync", mkNetPlanArm(1, false)},
	}
	for _, mix := range []string{"wholepath", "endpoint"} {
		for _, arm := range arms {
			for _, conns := range connCounts {
				g, err := gen.Generate(model.Figure7Stats(), rep.Scale, seed)
				if err != nil {
					return rep, err
				}
				cfg := core.Configuration{Assignments: []core.Assignment{
					{A: 1, B: g.Path.Len(), Org: cost.NIX},
				}}
				e, err := engine.New(g.Store, g.Path, cfg, model.PaperParams().PageSize, engine.Options{})
				if err != nil {
					return rep, err
				}
				ops := opsPerConn
				if arm.name == "net-sync" {
					ops = opsPerConn / 4
				}
				if mix == "wholepath" {
					// Every wholepath execution hauls hundreds of owners; a
					// quarter of the op count measures the same regime.
					ops = (ops + 3) / 4
				}
				pt, err := arm.run(g, e, mix, conns, ops)
				if err != nil {
					return rep, fmt.Errorf("experiments: netplan %s/%s/%d conns: %v", mix, arm.name, conns, err)
				}
				pt.Mix, pt.Arm, pt.Conns = mix, arm.name, conns
				rep.Points = append(rep.Points, pt)
				if err := e.Close(); err != nil {
					return rep, err
				}
			}
		}
	}
	rep.Ratios = computeNetPlanRatios(rep.Points)
	return rep, nil
}

func findNetPlanPoint(points []NetPlanPoint, mix, arm string, conns int) *NetPlanPoint {
	for i := range points {
		p := &points[i]
		if p.Mix == mix && p.Arm == arm && p.Conns == conns {
			return p
		}
	}
	return nil
}

func computeNetPlanRatios(points []NetPlanPoint) NetPlanRatios {
	var r NetPlanRatios
	pipe := findNetPlanPoint(points, "endpoint", "net-pipelined", 64)
	if per := findNetPlanPoint(points, "endpoint", "net-perrequest", 64); per != nil && pipe != nil && per.OpsPerSec > 0 {
		r.PipelineOverPerRequest64 = pipe.OpsPerSec / per.OpsPerSec
	}
	if s := findNetPlanPoint(points, "endpoint", "net-sync", 8); s != nil && s.OpsPerSec > 0 {
		if p8 := findNetPlanPoint(points, "endpoint", "net-pipelined", 8); p8 != nil {
			r.PipelineOverSync8 = p8.OpsPerSec / s.OpsPerSec
		}
	}
	if n := findNetPlanPoint(points, "wholepath", "net-pipelined", 64); n != nil && n.OpsPerSec > 0 {
		if emb := findNetPlanPoint(points, "wholepath", "embedded", 64); emb != nil {
			r.EmbeddedOverNet64 = emb.OpsPerSec / n.OpsPerSec
		}
	}
	if pipe != nil && pipe.Requests > 0 {
		r.DescentShare64 = float64(pipe.Descents) / float64(pipe.Requests)
	}
	return r
}

// runEmbeddedPlanArm drives the planner in process from `conns`
// goroutines — the ceiling the networked arms are measured against.
// Each goroutine owns a planner (as each server dispatcher does) over
// the shared engine source.
func runEmbeddedPlanArm(g *gen.Generated, e *engine.Engine, mix string, conns, ops int) (NetPlanPoint, error) {
	_, plans := netplanPools(g)
	target := netplanTarget(mix)
	lats := make([][]time.Duration, conns)
	errs := make([]error, conns)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pl := plan.NewPlanner(g.Store)
			if err := pl.Register(g.Path, e, nil); err != nil {
				errs[w] = err
				return
			}
			lat := make([]time.Duration, 0, ops)
			for i := 0; i < ops; i++ {
				pred := plans[(w*7919+i)%len(plans)]
				t0 := time.Now()
				p, err := pl.Plan(pred, target, false)
				if err == nil {
					_, err = p.Execute()
				}
				if err != nil {
					errs[w] = err
					return
				}
				lat = append(lat, time.Since(t0))
			}
			lats[w] = lat
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return NetPlanPoint{}, err
		}
	}
	np := summarizeNet(lats, elapsed)
	return NetPlanPoint{Ops: np.Ops, Elapsed: np.Elapsed, OpsPerSec: np.OpsPerSec,
		P50Micros: np.P50Micros, P99Micros: np.P99Micros}, nil
}

// mkNetPlanArm serves predicates over a real TCP loopback socket from
// `conns` pipelined clients. With depth 1 this is the synchronous
// control arm; with disableCoalescing every tree is planned and
// executed alone — per-request dispatch.
func mkNetPlanArm(depth int, disableCoalescing bool) func(*gen.Generated, *engine.Engine, string, int, int) (NetPlanPoint, error) {
	return func(g *gen.Generated, e *engine.Engine, mix string, conns, ops int) (NetPlanPoint, error) {
		srv := netserver.New(e, netserver.Options{
			Path:              g.Path,
			Store:             g.Store,
			DisableCoalescing: disableCoalescing,
		})
		if err := srv.RegisterPath(1, g.Path, e, nil); err != nil {
			return NetPlanPoint{}, err
		}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return NetPlanPoint{}, err
		}
		defer srv.Shutdown() //nolint:errcheck

		wires, _ := netplanPools(g)
		target := netplanTarget(mix)
		lats := make([][]time.Duration, conns)
		errs := make([]error, conns)
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < conns; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				lats[w], errs[w] = driveNetPlanConn(addr.String(), wires, target, w, ops, depth)
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		for _, err := range errs {
			if err != nil {
				return NetPlanPoint{}, err
			}
		}
		np := summarizeNet(lats, elapsed)
		pt := NetPlanPoint{Ops: np.Ops, Elapsed: np.Elapsed, OpsPerSec: np.OpsPerSec,
			P50Micros: np.P50Micros, P99Micros: np.P99Micros}
		pt.Requests, pt.Descents = srv.PredicateStats()
		return pt, nil
	}
}

// driveNetPlanConn is one connection's workload: a sliding window of up
// to `depth` pipelined predicate requests over the shared pool.
func driveNetPlanConn(addr string, pool []wire.PredNode, target string, w, ops, depth int) ([]time.Duration, error) {
	c, err := netclient.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer c.Close() //nolint:errcheck

	type inflight struct {
		call *netclient.Call
		sent time.Time
	}
	lat := make([]time.Duration, 0, ops)
	var window []inflight
	settle := func(f inflight) error {
		_, err := f.call.Wait()
		lat = append(lat, time.Since(f.sent))
		return err
	}
	for i := 0; i < ops; i++ {
		pred := &pool[(w*7919+i)%len(pool)]
		f := inflight{sent: time.Now(), call: c.GoPredicate(pred, target, false)}
		window = append(window, f)
		if len(window) >= depth {
			if err := settle(window[0]); err != nil {
				return nil, err
			}
			window = window[1:]
		}
	}
	for _, f := range window {
		if err := settle(f); err != nil {
			return nil, err
		}
	}
	return lat, nil
}

// Render returns the report as text.
func (r NetPlanReport) Render() string {
	t := NewTable(fmt.Sprintf("E8 — predicate dispatch over the wire: throughput vs connections (depth %d, pool %d)", r.Depth, r.PoolSize),
		"mix", "arm", "conns", "ops", "ops/sec", "p50 µs", "p99 µs", "requests", "descents")
	for _, p := range r.Points {
		t.AddRow(p.Mix, p.Arm, p.Conns, p.Ops,
			fmt.Sprintf("%.0f", p.OpsPerSec),
			fmt.Sprintf("%.1f", p.P50Micros),
			fmt.Sprintf("%.1f", p.P99Micros),
			p.Requests, p.Descents)
	}
	s := t.Render()
	s += fmt.Sprintf("\ncoalesced over per-request dispatch at 64 conns (endpoint mix): %.2fx\n", r.Ratios.PipelineOverPerRequest64)
	s += fmt.Sprintf("pipelined over sync at 8 conns (endpoint mix):                  %.1fx\n", r.Ratios.PipelineOverSync8)
	s += fmt.Sprintf("embedded planner over networked at 64 conns (wholepath mix):    %.2fx\n", r.Ratios.EmbeddedOverNet64)
	s += fmt.Sprintf("planner descents per request at 64 conns (endpoint mix):        %.3f\n", r.Ratios.DescentShare64)
	return s
}
