package experiments

import (
	"os"
	"runtime"
)

// HostInfo pins a benchmark artifact to the machine shape it ran on.
// Throughput and latency numbers are meaningless without the core count
// and scheduler width behind them; committed BENCH_*.json artifacts
// carry this block so a regression seen across two artifacts can first
// be checked for a host change.
type HostInfo struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// PageSize is the OS memory page size in bytes — context for the
	// pager-level pages/op figures, which use the model's page size, not
	// this one.
	PageSize int `json:"os_page_size"`
}

// CollectHost snapshots the current process's host shape.
func CollectHost() HostInfo {
	return HostInfo{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		PageSize:   os.Getpagesize(),
	}
}
