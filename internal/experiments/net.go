package experiments

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/netclient"
	"repro/internal/netserver"
)

// Experiment E7 — the cost of the socket. The serving tier's claim is
// that a binary pipelined protocol plus adaptive request coalescing
// carries the engine's batch kernels across the network mostly intact:
// concurrently-arriving point queries from many connections merge into
// one QueryBatch descent, so throughput approaches the embedded batch
// path instead of degrading to per-request dispatch. E7 measures that
// claim at 1/8/64/256 connections through four arms — the embedded
// QueryBatch kernel (no socket), the full networked path (pipelined
// clients, coalescing server), pipelining without coalescing (every
// request dispatched alone), and the classic one-request-per-round-trip
// client — reporting ops/sec and latency percentiles for each cell.
//
// Two read mixes bound the regimes. The wholepath mix queries "Person"
// through the full four-level path: every probe is a real multi-level
// descent returning hundreds of owners, so the engine does substantial
// per-request work and the socket tax is the interesting number — the
// networked path must stay within a small factor of embedded. The
// endpoint mix queries "Division" at the ending level: a probe is a
// bare in-memory index lookup returning an OID or two, the engine does
// almost nothing, and the wire's fixed per-round-trip cost is the whole
// story — no socket path approaches an in-process map probe, and the
// interesting number is what pipelining and coalescing recover over
// one-request-per-RTT. Each acceptance ratio is therefore computed on
// the mix where its claim is load-bearing.

// NetPoint is one measured (mix, arm, connections) cell.
type NetPoint struct {
	Mix       string  `json:"mix"`
	Arm       string  `json:"arm"`
	Conns     int     `json:"conns"`
	Ops       int     `json:"ops"`
	Elapsed   float64 `json:"elapsed_sec"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Micros float64 `json:"p50_us"`
	P99Micros float64 `json:"p99_us"`
	// Coalesced/Batches describe what the server's dispatcher did for
	// the networked arms (zero for the embedded arm): how many requests
	// rode a window another request opened, in how many batches.
	Batches   uint64 `json:"batches,omitempty"`
	Coalesced uint64 `json:"coalesced,omitempty"`
}

// NetRatios are the report's acceptance numbers, computed from Points.
// Each is taken on the mix where the claim is load-bearing: the socket
// tax on the wholepath mix (the engine does real per-request work
// there), the pipelining and coalescing gains on the endpoint mix (the
// wire's fixed costs dominate there, so they are what the protocol must
// recover).
type NetRatios struct {
	// PipelineSpeedup8 is pipelined+coalesced ops/sec over sync
	// (one request per RTT) ops/sec at 8 connections, endpoint mix.
	PipelineSpeedup8 float64 `json:"pipeline_speedup_at_8_conns"`
	// EmbeddedOverNet64 is embedded ops/sec over the networked
	// pipelined+coalesced ops/sec at 64 connections on the wholepath
	// mix — the socket tax on a working read path.
	EmbeddedOverNet64 float64 `json:"embedded_over_net_at_64_conns"`
	// CoalesceSpeedup256 is coalesced over per-request dispatch at 256
	// connections, both pipelined, endpoint mix — what the shared
	// window itself buys over and above pipelining. The window's
	// structural wins — parallel kernel fan-out across a batch, one
	// writer wakeup and one WAL fsync per window — need cores and
	// durable writes to show; on a single-core host serving in-memory
	// reads the two arms are within scheduling noise of each other
	// (the table reports every cell).
	CoalesceSpeedup256 float64 `json:"coalesce_speedup_at_256_conns"`
}

// NetReport is experiment E7's outcome, serialized to BENCH_net.json by
// `ixbench -run net`.
type NetReport struct {
	Host       HostInfo   `json:"host"`
	Seed       int64      `json:"seed"`
	Scale      float64    `json:"scale"`
	Depth      int        `json:"pipeline_depth"`
	OpsPerConn int        `json:"ops_per_conn"`
	Points     []NetPoint `json:"points"`
	Ratios     NetRatios  `json:"ratios"`
}

const netDepth = 32

// RunNet measures the four serving arms at each connection count on
// both read mixes (point queries only — the steady-state path the
// server's allocation budget pins) over the generated end values.
func RunNet(seed int64, connCounts []int, opsPerConn int) (NetReport, error) {
	rep := NetReport{
		Host:       CollectHost(),
		Seed:       seed,
		Scale:      0.01,
		Depth:      netDepth,
		OpsPerConn: opsPerConn,
	}
	arms := []struct {
		name string
		run  func(g *gen.Generated, e *engine.Engine, mix string, conns, ops int) (NetPoint, error)
	}{
		{"embedded", runEmbeddedArm},
		{"net-pipelined", mkNetArm(netDepth, false)},
		{"net-uncoalesced", mkNetArm(netDepth, true)},
		// One request per round trip is slow by design; trim its op count
		// the way E2 trims the naive evaluator's.
		{"net-sync", mkNetArm(1, false)},
	}
	for _, mix := range []string{"wholepath", "endpoint"} {
		for _, arm := range arms {
			for _, conns := range connCounts {
				g, err := gen.Generate(model.Figure7Stats(), rep.Scale, seed)
				if err != nil {
					return rep, err
				}
				cfg := core.Configuration{Assignments: []core.Assignment{
					{A: 1, B: g.Path.Len(), Org: cost.NIX},
				}}
				e, err := engine.New(g.Store, g.Path, cfg, model.PaperParams().PageSize, engine.Options{})
				if err != nil {
					return rep, err
				}
				ops := opsPerConn
				if arm.name == "net-sync" {
					ops = opsPerConn / 4
				}
				if mix == "wholepath" {
					// Every wholepath probe hauls hundreds of owners; a
					// quarter of the op count measures the same regime.
					ops = (ops + 3) / 4
				}
				pt, err := arm.run(g, e, mix, conns, ops)
				if err != nil {
					return rep, fmt.Errorf("experiments: %s/%s/%d conns: %v", mix, arm.name, conns, err)
				}
				pt.Mix, pt.Arm, pt.Conns = mix, arm.name, conns
				rep.Points = append(rep.Points, pt)
				if err := e.Close(); err != nil {
					return rep, err
				}
			}
		}
	}
	rep.Ratios = computeNetRatios(rep.Points)
	return rep, nil
}

// find returns the ops/sec of (mix, arm, conns), or 0.
func findNetPoint(points []NetPoint, mix, arm string, conns int) float64 {
	for _, p := range points {
		if p.Mix == mix && p.Arm == arm && p.Conns == conns {
			return p.OpsPerSec
		}
	}
	return 0
}

func computeNetRatios(points []NetPoint) NetRatios {
	var r NetRatios
	if s := findNetPoint(points, "endpoint", "net-sync", 8); s > 0 {
		r.PipelineSpeedup8 = findNetPoint(points, "endpoint", "net-pipelined", 8) / s
	}
	if n := findNetPoint(points, "wholepath", "net-pipelined", 64); n > 0 {
		r.EmbeddedOverNet64 = findNetPoint(points, "wholepath", "embedded", 64) / n
	}
	if u := findNetPoint(points, "endpoint", "net-uncoalesced", 256); u > 0 {
		r.CoalesceSpeedup256 = findNetPoint(points, "endpoint", "net-pipelined", 256) / u
	}
	return r
}

// netProbe picks the i-th probe of worker w for a mix: wholepath probes
// resolve "Person" through the full four-level descent (hundreds of
// owners per value at this scale — the engine-bound regime), endpoint
// probes resolve "Division" at the ending level (an OID or two — the
// wire-bound regime).
func netProbe(mix string, g *gen.Generated, w, i int) exec.Probe {
	p := exec.Probe{Value: g.EndValues[(w*7919+i)%len(g.EndValues)]}
	if mix == "wholepath" {
		p.TargetClass = "Person"
	} else {
		p.TargetClass = "Division"
		p.Hierarchy = i%4 == 0
	}
	return p
}

// runEmbeddedArm drives the engine's QueryBatch kernel directly from
// `conns` goroutines, batching netDepth probes per call — the ceiling
// the networked arms are measured against. Each probe's latency is the
// whole batch's wall time: that is what a caller whose request rides
// the batch observes.
func runEmbeddedArm(g *gen.Generated, e *engine.Engine, mix string, conns, ops int) (NetPoint, error) {
	lats := make([][]time.Duration, conns)
	errs := make([]error, conns)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lat := make([]time.Duration, 0, ops)
			probes := make([]exec.Probe, 0, netDepth)
			for i := 0; i < ops; i += len(probes) {
				probes = probes[:0]
				for k := 0; k < netDepth && i+k < ops; k++ {
					probes = append(probes, netProbe(mix, g, w, i+k))
				}
				t0 := time.Now()
				if _, err := e.QueryBatch(probes); err != nil {
					errs[w] = err
					return
				}
				d := time.Since(t0)
				for range probes {
					lat = append(lat, d)
				}
			}
			lats[w] = lat
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return NetPoint{}, err
		}
	}
	return summarizeNet(lats, elapsed), nil
}

// mkNetArm serves the engine over a real TCP loopback socket and drives
// it from `conns` independent clients, each keeping up to `depth`
// requests in flight. With depth 1 this is the classic synchronous
// client; with disableCoalescing the server dispatches every request
// alone — the two control arms.
func mkNetArm(depth int, disableCoalescing bool) func(*gen.Generated, *engine.Engine, string, int, int) (NetPoint, error) {
	return func(g *gen.Generated, e *engine.Engine, mix string, conns, ops int) (NetPoint, error) {
		srv := netserver.New(e, netserver.Options{
			Path:              g.Path,
			DisableCoalescing: disableCoalescing,
		})
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return NetPoint{}, err
		}
		defer srv.Shutdown() //nolint:errcheck

		lats := make([][]time.Duration, conns)
		errs := make([]error, conns)
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < conns; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				lats[w], errs[w] = driveNetConn(addr.String(), mix, g, w, ops, depth)
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		for _, err := range errs {
			if err != nil {
				return NetPoint{}, err
			}
		}
		pt := summarizeNet(lats, elapsed)
		_, pt.Batches, pt.Coalesced = srv.CoalesceStats()
		return pt, nil
	}
}

// driveNetConn is one connection's workload: a sliding window of up to
// `depth` pipelined requests, each latency measured send-to-response.
func driveNetConn(addr, mix string, g *gen.Generated, w, ops, depth int) ([]time.Duration, error) {
	c, err := netclient.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer c.Close() //nolint:errcheck

	type inflight struct {
		call *netclient.Call
		sent time.Time
	}
	lat := make([]time.Duration, 0, ops)
	var window []inflight
	settle := func(f inflight) error {
		_, err := f.call.Wait()
		lat = append(lat, time.Since(f.sent))
		return err
	}
	for i := 0; i < ops; i++ {
		p := netProbe(mix, g, w, i)
		f := inflight{sent: time.Now(), call: c.GoQuery(p.Value, p.TargetClass, p.Hierarchy)}
		window = append(window, f)
		if len(window) >= depth {
			if err := settle(window[0]); err != nil {
				return nil, err
			}
			window = window[1:]
		}
	}
	for _, f := range window {
		if err := settle(f); err != nil {
			return nil, err
		}
	}
	return lat, nil
}

// summarizeNet folds per-connection latency series into one point.
func summarizeNet(lats [][]time.Duration, elapsed time.Duration) NetPoint {
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pt := NetPoint{Ops: len(all), Elapsed: elapsed.Seconds()}
	if len(all) == 0 {
		return pt
	}
	pt.OpsPerSec = float64(len(all)) / elapsed.Seconds()
	pt.P50Micros = float64(all[len(all)/2].Microseconds())
	pt.P99Micros = float64(all[len(all)*99/100].Microseconds())
	return pt
}

// Render returns the report as text.
func (r NetReport) Render() string {
	t := NewTable(fmt.Sprintf("E7 — networked serving: point-read throughput vs connections (depth %d)", r.Depth),
		"mix", "arm", "conns", "ops", "ops/sec", "p50 µs", "p99 µs", "batches", "coalesced")
	for _, p := range r.Points {
		t.AddRow(p.Mix, p.Arm, p.Conns, p.Ops,
			fmt.Sprintf("%.0f", p.OpsPerSec),
			fmt.Sprintf("%.1f", p.P50Micros),
			fmt.Sprintf("%.1f", p.P99Micros),
			p.Batches, p.Coalesced)
	}
	s := t.Render()
	s += fmt.Sprintf("\npipelined+coalesced over sync at 8 conns (endpoint mix):  %.1fx\n", r.Ratios.PipelineSpeedup8)
	s += fmt.Sprintf("embedded over networked at 64 conns (wholepath mix):      %.2fx\n", r.Ratios.EmbeddedOverNet64)
	s += fmt.Sprintf("coalescing over per-request at 256 conns (endpoint mix):  %.2fx\n", r.Ratios.CoalesceSpeedup256)
	return s
}
