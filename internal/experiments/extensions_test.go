package experiments

import (
	"strings"
	"testing"

	"repro/internal/cost"
)

func TestExtendedReport(t *testing.T) {
	r, err := RunExtended()
	if err != nil {
		t.Fatal(err)
	}
	// The extended search space can only improve or preserve the optimum.
	if r.Result.Best.Cost > r.Baseline.Best.Cost+1e-9 {
		t.Errorf("extended optimum %.2f worse than baseline %.2f", r.Result.Best.Cost, r.Baseline.Best.Cost)
	}
	if err := r.Result.Best.Validate(4); err != nil {
		t.Error(err)
	}
	// NX on a long subpath must be dominated (its inner-class queries scan).
	nxWhole, ok := r.Matrix.Cell(1, 4, cost.NX)
	if !ok {
		t.Fatal("NX column missing")
	}
	nixWhole, _ := r.Matrix.Cell(1, 4, cost.NIX)
	if nxWhole <= nixWhole {
		t.Errorf("whole-path NX %.2f not dominated by NIX %.2f", nxWhole, nixWhole)
	}
	// On length-1 no-subclass subpaths PX and NX coincide with the paper's
	// organizations (all structures degenerate to a value→OID-set tree).
	for _, org := range []cost.Organization{cost.PX, cost.NX} {
		v, _ := r.Matrix.Cell(4, 4, org)
		mx, _ := r.Matrix.Cell(4, 4, cost.MX)
		if diff := v - mx; diff > 0.5 || diff < -0.5 {
			t.Errorf("%v length-1 cell %.2f far from MX %.2f", org, v, mx)
		}
	}
	if !strings.Contains(r.Render(), "PX") {
		t.Error("render broken")
	}
}

func TestSelectivitySweep(t *testing.T) {
	r, err := RunSelectivitySweep([]float64{0, 0.01, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 3 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// Costs grow with selectivity.
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].Best.Cost < r.Points[i-1].Best.Cost-1e-9 {
			t.Errorf("cost decreased with selectivity: %.2f -> %.2f",
				r.Points[i-1].Best.Cost, r.Points[i].Best.Cost)
		}
	}
	for _, p := range r.Points {
		if err := p.Best.Validate(4); err != nil {
			t.Errorf("sel=%.3f: %v", p.Selectivity, err)
		}
		if p.Best.Cost > p.WholeNIX+1e-9 {
			t.Errorf("sel=%.3f: optimum above whole-path NIX", p.Selectivity)
		}
	}
	if _, err := RunSelectivitySweep([]float64{2}); err == nil {
		t.Error("invalid selectivity accepted")
	}
	if !strings.Contains(r.Render(), "selectivity") {
		t.Error("render broken")
	}
}

func TestBufferAblation(t *testing.T) {
	r, err := RunBufferAblation(500, 2000, []int{0, 8, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 3 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// Capacity 0: every access is a read (the paper's convention).
	if r.Points[0].Hits != 0 || r.Points[0].HitRate != 0 {
		t.Errorf("capacity 0 produced hits: %+v", r.Points[0])
	}
	// Hit rate grows with capacity; reads shrink.
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].HitRate < r.Points[i-1].HitRate {
			t.Errorf("hit rate not monotone: %+v", r.Points)
		}
		if r.Points[i].Reads > r.Points[i-1].Reads {
			t.Errorf("reads not shrinking: %+v", r.Points)
		}
	}
	if r.Points[2].HitRate < 0.5 {
		t.Errorf("64-page buffer hit rate %.2f, want > 0.5 on skewed workload", r.Points[2].HitRate)
	}
	if _, err := RunBufferAblation(10, 10, []int{-1}); err == nil {
		t.Error("negative capacity accepted")
	}
	if !strings.Contains(r.Render(), "hit rate") {
		t.Error("render broken")
	}
}
