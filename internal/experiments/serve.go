package experiments

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/oodb"
	"repro/internal/stats"
)

// Experiment E2 — measured serving throughput. The paper (and the index
// advisors that follow it: AIM, CoPhy) argues for configurations by
// modeled page accesses; E2 closes the loop by measuring realized
// throughput: N worker goroutines drive a mixed query/update workload
// against the optimal configuration, the whole-path-NIX strawman and the
// unindexed naive evaluator, reporting ops/sec, p50/p99 latency and
// pages/op for each (configuration, workers) cell.

// ServePoint is one measured (configuration, workers) cell.
type ServePoint struct {
	Config     string  `json:"config"`
	Workers    int     `json:"workers"`
	Ops        int     `json:"ops"`
	Elapsed    float64 `json:"elapsed_sec"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	P50Micros  float64 `json:"p50_us"`
	P99Micros  float64 `json:"p99_us"`
	PagesPerOp float64 `json:"pages_per_op"`
	// Speedup is OpsPerSec relative to the same configuration at one
	// worker — the scaling curve the serving path is built for.
	Speedup float64 `json:"speedup_vs_1_worker"`
}

// ServeReport is experiment E2's outcome, serialized to BENCH_serve.json
// by `ixbench -run serve` so the repository accumulates a throughput
// trajectory across revisions.
type ServeReport struct {
	Host         HostInfo     `json:"host"`
	Seed         int64        `json:"seed"`
	Scale        float64      `json:"scale"`
	Mix          string       `json:"mix"`
	OpsPerWorker int          `json:"ops_per_worker"`
	Points       []ServePoint `json:"points"`
}

// serveBackend abstracts "one way of serving the mixed workload" so the
// engine-backed configurations and the naive evaluator measure alike.
type serveBackend struct {
	name  string
	query func(v oodb.Value, class string) error
	ins   func(v oodb.Value) (oodb.OID, error)
	del   func(oid oodb.OID) error
	pages func() uint64 // cumulative page accesses
	ops   int           // per-worker operation count
}

// RunServe generates one database per backend (same seed, so identical
// contents), then measures each backend at each worker count. The query
// results themselves are covered by the equivalence tests; here only the
// realized cost is recorded.
func RunServe(seed int64, workerCounts []int, opsPerWorker int) (ServeReport, error) {
	rep := ServeReport{
		Host:         CollectHost(),
		Seed:         seed,
		Scale:        0.01,
		Mix:          "60% Person query / 30% Division query / 5% insert / 5% delete",
		OpsPerWorker: opsPerWorker,
	}
	ps := model.Figure7Stats()

	backends := []struct {
		name  string
		build func(g *gen.Generated) (*serveBackend, error)
		ops   int
	}{
		{"optimal", buildOptimalBackend, opsPerWorker},
		{"whole-path-NIX", buildWholeNIXBackend, opsPerWorker},
		// The naive evaluator navigates the object graph per query; it is
		// orders of magnitude slower, so it gets a reduced op count.
		{"naive", buildNaiveBackend, opsPerWorker / 20},
	}
	for _, b := range backends {
		base := 0.0
		for _, workers := range workerCounts {
			g, err := gen.Generate(ps, rep.Scale, seed)
			if err != nil {
				return rep, err
			}
			be, err := b.build(g)
			if err != nil {
				return rep, fmt.Errorf("experiments: build %s: %v", b.name, err)
			}
			be.ops = b.ops
			if be.ops < 1 {
				be.ops = 1
			}
			pt, err := measureServe(g, be, workers)
			if err != nil {
				return rep, err
			}
			if workers == workerCounts[0] {
				base = pt.OpsPerSec
			}
			if base > 0 {
				pt.Speedup = pt.OpsPerSec / base
			}
			rep.Points = append(rep.Points, pt)
		}
	}
	return rep, nil
}

// buildOptimalBackend selects the optimal configuration for the store's
// collected statistics under the paper's Example 5.1 workload (for which
// the optimum is the split NIX/MX configuration, not the whole-path NIX),
// then serves through the lifecycle engine.
func buildOptimalBackend(g *gen.Generated) (*serveBackend, error) {
	ps, err := stats.Collect(g.Store, g.Path, model.PaperParams())
	if err != nil {
		return nil, err
	}
	assumed := model.Figure7Stats()
	for l := 1; l <= ps.Len(); l++ {
		copy(ps.Level(l).Loads, assumed.Level(l).Loads)
	}
	res, _, err := core.Select(ps, cost.Organizations)
	if err != nil {
		return nil, err
	}
	return buildEngineBackend(g, res.Best, "optimal "+res.Best.String())
}

// buildWholeNIXBackend serves through a single whole-path NIX — the
// strawman Example 5.1 improves on.
func buildWholeNIXBackend(g *gen.Generated) (*serveBackend, error) {
	cfg := core.Configuration{Assignments: []core.Assignment{
		{A: 1, B: g.Path.Len(), Org: cost.NIX},
	}}
	return buildEngineBackend(g, cfg, "whole-path-NIX")
}

func buildEngineBackend(g *gen.Generated, cfg core.Configuration, name string) (*serveBackend, error) {
	e, err := engine.New(g.Store, g.Path, cfg, model.PaperParams().PageSize, engine.Options{})
	if err != nil {
		return nil, err
	}
	e.ResetStats()
	g.Store.Pager().ResetStats()
	var buf sync.Pool
	return &serveBackend{
		name: name,
		query: func(v oodb.Value, class string) error {
			b, _ := buf.Get().(*[]oodb.OID)
			if b == nil {
				b = new([]oodb.OID)
			}
			out, err := e.QueryInto((*b)[:0], v, class, false)
			*b = out
			buf.Put(b)
			return err
		},
		ins: func(v oodb.Value) (oodb.OID, error) {
			return e.Insert("Division", map[string][]oodb.Value{"name": {v}})
		},
		del: func(oid oodb.OID) error { return e.Delete(oid) },
		pages: func() uint64 {
			return e.IndexStats().Accesses() + g.Store.Pager().Stats().Accesses()
		},
	}, nil
}

// buildNaiveBackend serves queries by forward navigation and updates
// directly against the store — the unindexed baseline.
func buildNaiveBackend(g *gen.Generated) (*serveBackend, error) {
	g.Store.Pager().ResetStats()
	return &serveBackend{
		name: "naive",
		query: func(v oodb.Value, class string) error {
			_, err := exec.NaiveQuery(g.Store, g.Path, v, class, false)
			return err
		},
		ins: func(v oodb.Value) (oodb.OID, error) {
			return g.Store.Insert("Division", map[string][]oodb.Value{"name": {v}})
		},
		del:   func(oid oodb.OID) error { return g.Store.Delete(oid) },
		pages: func() uint64 { return g.Store.Pager().Stats().Accesses() },
	}, nil
}

// measureServe drives the mixed workload from `workers` goroutines and
// collects throughput, latency percentiles and pages/op.
func measureServe(g *gen.Generated, be *serveBackend, workers int) (ServePoint, error) {
	pt := ServePoint{Config: be.name, Workers: workers, Ops: workers * be.ops}
	startPages := be.pages()
	lats := make([][]time.Duration, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lat := make([]time.Duration, 0, be.ops)
			var pending []oodb.OID
			for i := 0; i < be.ops; i++ {
				v := g.EndValues[(w*7919+i)%len(g.EndValues)]
				t0 := time.Now()
				var err error
				switch {
				case i%20 == 9: // 5% inserts
					var oid oodb.OID
					oid, err = be.ins(v)
					if err == nil {
						pending = append(pending, oid)
					}
				case i%20 == 19 && len(pending) > 0: // 5% deletes
					err = be.del(pending[len(pending)-1])
					pending = pending[:len(pending)-1]
				case i%10 < 3: // ~30% ending-level queries
					err = be.query(v, "Division")
				default: // ~60% whole-path queries
					err = be.query(v, "Person")
				}
				lat = append(lat, time.Since(t0))
				if err != nil {
					errs[w] = fmt.Errorf("experiments: %s worker %d op %d: %v", be.name, w, i, err)
					return
				}
			}
			lats[w] = lat
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return pt, err
		}
	}
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pt.Elapsed = elapsed.Seconds()
	pt.OpsPerSec = float64(pt.Ops) / elapsed.Seconds()
	pt.P50Micros = float64(all[len(all)/2].Microseconds())
	pt.P99Micros = float64(all[len(all)*99/100].Microseconds())
	pt.PagesPerOp = float64(be.pages()-startPages) / float64(pt.Ops)
	return pt, nil
}

// Render returns the report as text.
func (r ServeReport) Render() string {
	t := NewTable("E2 — serving throughput under concurrency ("+r.Mix+")",
		"config", "workers", "ops", "ops/sec", "p50 µs", "p99 µs", "pages/op", "speedup")
	for _, p := range r.Points {
		t.AddRow(p.Config, p.Workers, p.Ops,
			fmt.Sprintf("%.0f", p.OpsPerSec),
			fmt.Sprintf("%.1f", p.P50Micros),
			fmt.Sprintf("%.1f", p.P99Micros),
			fmt.Sprintf("%.2f", p.PagesPerOp),
			fmt.Sprintf("%.2fx", p.Speedup))
	}
	return t.Render()
}
