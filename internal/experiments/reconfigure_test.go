package experiments

import (
	"strings"
	"testing"
)

func TestReconfigureReport(t *testing.T) {
	rep, err := RunReconfigure(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(rep.Phases))
	}
	reporting, ingest := rep.Phases[0], rep.Phases[1]
	// The initial configuration was selected for the reporting phase's
	// workload: serving it must not trigger a swap.
	if reporting.Changed {
		t.Errorf("reporting phase swapped: %+v", reporting)
	}
	if reporting.Drift > 0.2 {
		t.Errorf("reporting drift = %g, want small", reporting.Drift)
	}
	// The ingest phase flips the mix: the engine must detect the drift
	// and swap to a different configuration.
	if !ingest.Changed {
		t.Errorf("ingest phase did not swap: %+v", ingest)
	}
	if ingest.Drift < 0.3 {
		t.Errorf("ingest drift = %g, want substantial", ingest.Drift)
	}
	if ingest.From.Equal(ingest.To) {
		t.Errorf("swap kept the configuration: %v", ingest.From)
	}
	out := rep.Render()
	if !strings.Contains(out, "reporting") || !strings.Contains(out, "ingest") {
		t.Errorf("render missing phases:\n%s", out)
	}
}
