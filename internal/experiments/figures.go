package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/model"
)

// Fig6Report reproduces the Section 5 walkthrough over the (reconstructed)
// hypothetical matrix of Figure 6.
type Fig6Report struct {
	Matrix *core.Matrix
	Result core.Result
}

// RunFig6 executes experiment F6.
func RunFig6() Fig6Report {
	m := core.Figure6Matrix()
	return Fig6Report{Matrix: m, Result: m.OptIndCon()}
}

// Render returns the report text: the matrix with underlined minima
// (marked *), the optimal configuration, and the search statistics.
func (r Fig6Report) Render() string {
	var b strings.Builder
	b.WriteString(renderMatrix("Figure 6 — hypothetical cost matrix for P_ex = C1.A1.A2.A3.A4", r.Matrix, nil))
	fmt.Fprintf(&b, "\nOptimal configuration: %s with processing cost %.0f\n", r.Result.Best, r.Result.Best.Cost)
	fmt.Fprintf(&b, "Paper: {(C1.A1, MX), (C2.A2.A3.A4, NIX)} with processing cost 8\n")
	fmt.Fprintf(&b, "Configurations evaluated: %d of %d (pruned prefixes: %d)\n",
		r.Result.Stats.Evaluated, r.Result.Stats.TotalConfigurations, r.Result.Stats.Pruned)
	return b.String()
}

// Fig8Report reproduces Example 5.1: the cost matrix computed from the
// Figure 7 statistics and the optimal configuration.
type Fig8Report struct {
	Stats  *model.PathStats
	Matrix *core.Matrix
	Result core.Result
	// WholePathNIX is the cost of indexing the whole path with one NIX
	// (the alternative the paper quotes as 42.84).
	WholePathNIX float64
	// ImprovementFactor is WholePathNIX / optimal (the paper reports 2.7).
	ImprovementFactor float64
	// PaperOptimalCost and PaperWholePathNIX are the published values.
	PaperOptimalCost, PaperWholePathNIX float64
}

// RunFig8 executes experiment F7/F8 with the calibrated paper parameters.
func RunFig8() (Fig8Report, error) {
	ps := model.Figure7Stats()
	m, err := core.NewMatrixFromStats(ps, nil)
	if err != nil {
		return Fig8Report{}, err
	}
	r := m.OptIndCon()
	nixWhole, _ := m.Cell(1, ps.Len(), cost.NIX)
	return Fig8Report{
		Stats:             ps,
		Matrix:            m,
		Result:            r,
		WholePathNIX:      nixWhole,
		ImprovementFactor: nixWhole / r.Best.Cost,
		PaperOptimalCost:  16.03,
		PaperWholePathNIX: 42.84,
	}, nil
}

// SubpathName renders a subpath of the Example 5.1 path in the paper's
// notation.
func SubpathName(ps *model.PathStats, a, b int) string {
	sp, err := ps.Path.SubPath(a, b)
	if err != nil {
		return fmt.Sprintf("S%d-%d", a, b)
	}
	return sp.String()
}

// Render returns the report text.
func (r Fig8Report) Render() string {
	var b strings.Builder
	b.WriteString(renderMatrix("Figure 8 — cost matrix for Per.owns.man.divs.name (Figure 7 statistics)", r.Matrix, r.Stats))
	fmt.Fprintf(&b, "\nOptimal configuration: %s\n", describeConfig(r.Stats, r.Result.Best))
	fmt.Fprintf(&b, "  processing cost            : %.2f   (paper: %.2f)\n", r.Result.Best.Cost, r.PaperOptimalCost)
	fmt.Fprintf(&b, "  whole-path NIX             : %.2f   (paper: %.2f)\n", r.WholePathNIX, r.PaperWholePathNIX)
	fmt.Fprintf(&b, "  improvement factor         : %.2f   (paper: %.2f)\n", r.ImprovementFactor, r.PaperWholePathNIX/r.PaperOptimalCost)
	fmt.Fprintf(&b, "  configurations evaluated   : %d of %d (paper: 4 of 8)\n",
		r.Result.Stats.Evaluated, r.Result.Stats.TotalConfigurations)
	return b.String()
}

// describeConfig renders a configuration with subpath names.
func describeConfig(ps *model.PathStats, c core.Configuration) string {
	parts := make([]string, 0, len(c.Assignments))
	for _, a := range c.Assignments {
		parts = append(parts, fmt.Sprintf("(%s, %s)", SubpathName(ps, a.A, a.B), a.Org))
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// renderMatrix renders a cost matrix with the per-row minimum starred.
func renderMatrix(title string, m *core.Matrix, ps *model.PathStats) string {
	header := []string{"subpath"}
	for _, org := range m.Orgs {
		header = append(header, org.String())
	}
	t := NewTable(title, header...)
	for _, ab := range m.Rows() {
		name := fmt.Sprintf("S%d-%d", ab[0], ab[1])
		if ps != nil {
			name = SubpathName(ps, ab[0], ab[1])
		}
		row := []interface{}{name}
		_, minV := m.MinCost(ab[0], ab[1])
		for _, org := range m.Orgs {
			v, _ := m.Cell(ab[0], ab[1], org)
			cell := fmt.Sprintf("%.2f", v)
			if v == minV {
				cell += " *"
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	return t.Render()
}
