package experiments

import "testing"

// TestRunDurable smoke-runs E5 at a small scale and checks the physics
// every cell must obey: SyncAlways pays at least one fsync per write
// operation, SyncNever pays none; recovery replays exactly the abandoned
// operations' records; the naive cold sweep reads from disk and the warm
// sweep thrashes rather than caching; and the indexed backend never reads
// more pages than the naive navigator.
func TestRunDurable(t *testing.T) {
	ops := 400
	if testing.Short() {
		ops = 120
	}
	rep, err := RunDurable(7, ops)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Policies) != 3 || len(rep.Recovery) != 3 || len(rep.Cold) != 4 {
		t.Fatalf("report shape: %d policies, %d recovery, %d cold cells",
			len(rep.Policies), len(rep.Recovery), len(rep.Cold))
	}
	byPolicy := map[string]DurablePolicyPoint{}
	for _, p := range rep.Policies {
		byPolicy[p.Policy] = p
		if p.WALBytes == 0 {
			t.Fatalf("policy %s appended no WAL bytes", p.Policy)
		}
	}
	if got := byPolicy["always"].Fsyncs; got < uint64(ops) {
		t.Fatalf("SyncAlways: %d fsyncs for %d ops, want at least one per op", got, ops)
	}
	if got := byPolicy["never"].Fsyncs; got != 0 {
		t.Fatalf("SyncNever: %d fsyncs, want 0", got)
	}
	for _, p := range rep.Recovery {
		if p.Replayed != uint64(p.Ops) {
			t.Fatalf("recovery at %d ops replayed %d records", p.Ops, p.Replayed)
		}
	}
	cold := map[string]DurableColdPoint{}
	for _, c := range rep.Cold {
		cold[c.Backend+"/"+c.Phase] = c
	}
	if cold["naive/cold"].DiskReads == 0 {
		t.Fatal("naive cold sweep read nothing from disk")
	}
	// With a pool far smaller than the population an LRU thrashes under
	// sequential scans: the pool ends each sweep holding the scan's tail,
	// the wrong content for the next sweep's head, so warm gets no real
	// caching benefit and can even re-read slightly more than cold
	// depending on eviction order (the in-query fan-out makes the exact
	// order nondeterministic). Assert warm ≈ cold within 10% either way —
	// a warm sweep meaningfully cheaper or dearer than cold would mean
	// the pool geometry no longer forces the thrash this curve is about.
	if w, c := cold["naive/warm"].DiskReads, cold["naive/cold"].DiskReads; w > c+c/10 || w < c-c/10 {
		t.Fatalf("naive warm sweep read %d pages, cold read %d — expected thrash (warm ≈ cold)", w, c)
	}
	if o, n := cold["optimal/cold"].DiskReads, cold["naive/cold"].DiskReads; o > n {
		t.Fatalf("indexed cold sweep read %d store pages, naive read %d", o, n)
	}
}
