package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/oodb"
	"repro/internal/schema"
	"repro/internal/wal"
)

// Experiment E5 — durability cost. The paper's cost model prices index
// maintenance in page accesses; a durable deployment pays two further
// costs the in-memory experiments cannot show: the fsync traffic of the
// write-ahead log (per commit policy) and the recovery work of replaying
// it. E5 measures three curves on the disk-backed engine:
//
//  1. fsync-policy throughput — the same write workload under
//     SyncAlways (one fsync per operation), SyncGroup (fsyncs amortized
//     over a commit window) and SyncNever (OS page cache only): the
//     classic durability/throughput trade, quantified for this engine.
//  2. recovery time vs WAL length — checkpointing disabled, the process
//     abandoned after w operations, the reopen timed: replay cost grows
//     with the log, which is exactly what checkpoints bound.
//  3. cold-cache serving on disk — after a reopen with a small buffer
//     pool, the first sweep over the value domain pays checksummed disk
//     reads for every pool miss; the second sweep runs warm. Measured
//     for the indexed engine and the naive navigator: the index's
//     page-access advantage persists (and grows) when misses cost real
//     I/O, which is the cost model's original premise.
type DurableReport struct {
	Host     HostInfo               `json:"host"`
	Seed     int64                  `json:"seed"`
	Ops      int                    `json:"ops"`
	Policies []DurablePolicyPoint   `json:"policies"`
	Recovery []DurableRecoveryPoint `json:"recovery"`
	Cold     []DurableColdPoint     `json:"cold_cache"`
}

// DurablePolicyPoint is one fsync-policy cell: the write workload's
// throughput and durability traffic under one WAL commit policy.
type DurablePolicyPoint struct {
	Policy    string  `json:"policy"`
	Ops       int     `json:"ops"`
	Elapsed   float64 `json:"elapsed_sec"`
	OpsPerSec float64 `json:"ops_per_sec"`
	Fsyncs    uint64  `json:"fsyncs"`
	WALBytes  uint64  `json:"wal_bytes"`
}

// DurableRecoveryPoint is one recovery-time cell: reopen cost after
// abandoning a process (no close, no checkpoint) at a given WAL length.
type DurableRecoveryPoint struct {
	Ops            int     `json:"ops"`
	WALBytes       int64   `json:"wal_bytes"`
	Replayed       uint64  `json:"replayed"`
	RecoveryMillis float64 `json:"recovery_ms"`
}

// DurableColdPoint is one cold-cache cell: a sweep of point queries over
// the whole value domain, indexed or naive, on a cold or warm buffer
// pool.
type DurableColdPoint struct {
	Backend        string  `json:"backend"` // "optimal" or "naive"
	Phase          string  `json:"phase"`   // "cold" or "warm"
	Queries        int     `json:"queries"`
	MicrosPerQuery float64 `json:"us_per_query"`
	// DiskReads counts store pages fetched from the page file (pool
	// misses, each a checksummed ReadAt); PoolHits served from memory.
	DiskReads uint64 `json:"disk_reads"`
	PoolHits  uint64 `json:"pool_hits"`
}

// durableDriver issues a mixed write workload (inserts of
// Company/Vehicle/Person tree nodes, renames, re-links, deletes) against
// a durable engine, tracking the live population for valid references.
type durableDriver struct {
	rng       *rand.Rand
	vals      []oodb.Value
	companies []oodb.OID
	cars      []oodb.OID
	persons   []oodb.OID
}

func newDurableDriver(seed int64) *durableDriver {
	d := &durableDriver{rng: rand.New(rand.NewSource(seed))}
	for i := 0; i < 64; i++ {
		d.vals = append(d.vals, oodb.StrV(fmt.Sprintf("dur-val-%02d", i)))
	}
	return d
}

func (d *durableDriver) val() oodb.Value { return d.vals[d.rng.Intn(len(d.vals))] }

func (d *durableDriver) step(e *engine.Engine) error {
	r := d.rng.Intn(100)
	switch {
	case r < 25 || len(d.companies) == 0:
		oid, err := e.Insert("Company", map[string][]oodb.Value{"name": {d.val()}})
		if err != nil {
			return err
		}
		d.companies = append(d.companies, oid)
	case r < 45:
		ref := d.companies[d.rng.Intn(len(d.companies))]
		oid, err := e.Insert("Vehicle", map[string][]oodb.Value{"man": {oodb.RefV(ref)}})
		if err != nil {
			return err
		}
		d.cars = append(d.cars, oid)
	case r < 65 && len(d.cars) > 0:
		ref := d.cars[d.rng.Intn(len(d.cars))]
		oid, err := e.Insert("Person", map[string][]oodb.Value{"owns": {oodb.RefV(ref)}})
		if err != nil {
			return err
		}
		d.persons = append(d.persons, oid)
	case r < 85:
		oid := d.companies[d.rng.Intn(len(d.companies))]
		return e.Update(oid, map[string][]oodb.Value{"name": {d.val()}})
	default:
		if len(d.persons) == 0 {
			oid := d.companies[d.rng.Intn(len(d.companies))]
			return e.Update(oid, map[string][]oodb.Value{"name": {d.val()}})
		}
		i := d.rng.Intn(len(d.persons))
		oid := d.persons[i]
		d.persons[i] = d.persons[len(d.persons)-1]
		d.persons = d.persons[:len(d.persons)-1]
		return e.Delete(oid)
	}
	return nil
}

// durableCfg is E5's fixed configuration: one whole-path NIX.
func durableCfg(p *schema.Path) core.Configuration {
	return core.Configuration{Assignments: []core.Assignment{{A: 1, B: p.Len(), Org: cost.NIX}}}
}

// RunDurable measures the three E5 curves with `ops` write operations as
// the base workload size. Directories live under the system temp dir and
// are removed afterwards.
func RunDurable(seed int64, ops int) (DurableReport, error) {
	rep := DurableReport{Host: CollectHost(), Seed: seed, Ops: ops}
	p := schema.PaperPathOwnsManName()
	s := p.Schema()
	cfg := durableCfg(p)
	const pageSize = 1024

	root, err := os.MkdirTemp("", "ixbench-durable-")
	if err != nil {
		return rep, err
	}
	defer os.RemoveAll(root)

	// Curve 1: fsync-policy throughput.
	for _, pol := range []wal.Policy{wal.SyncAlways, wal.SyncGroup, wal.SyncNever} {
		dir := filepath.Join(root, "policy-"+pol.String())
		e, err := engine.OpenDurable(dir, s, p, cfg, pageSize, engine.DurableOptions{Policy: pol})
		if err != nil {
			return rep, err
		}
		d := newDurableDriver(seed)
		start := time.Now()
		for i := 0; i < ops; i++ {
			if err := d.step(e); err != nil {
				e.Close()
				return rep, fmt.Errorf("experiments: policy %s op %d: %w", pol, i, err)
			}
		}
		elapsed := time.Since(start)
		ds := e.DurabilityStats() // before Close: its checkpoint fsyncs are shutdown, not workload
		if err := e.Close(); err != nil {
			return rep, err
		}
		rep.Policies = append(rep.Policies, DurablePolicyPoint{
			Policy:    pol.String(),
			Ops:       ops,
			Elapsed:   elapsed.Seconds(),
			OpsPerSec: float64(ops) / elapsed.Seconds(),
			Fsyncs:    ds.Fsyncs,
			WALBytes:  ds.WALBytes,
		})
	}

	// Curve 2: recovery time vs WAL length. Checkpoints disabled; the
	// engine is abandoned (its file handles leak until process exit, as a
	// kill's would) so the whole state rides the WAL into the reopen.
	for _, w := range []int{ops / 4, ops, 4 * ops} {
		if w < 1 {
			w = 1
		}
		dir := filepath.Join(root, fmt.Sprintf("recovery-%d", w))
		e, err := engine.OpenDurable(dir, s, p, cfg, pageSize,
			engine.DurableOptions{Policy: wal.SyncNever, CheckpointBytes: -1})
		if err != nil {
			return rep, err
		}
		d := newDurableDriver(seed)
		for i := 0; i < w; i++ {
			if err := d.step(e); err != nil {
				return rep, fmt.Errorf("experiments: recovery fill op %d: %w", i, err)
			}
		}
		walBytes := e.WALSize()
		// No Close: abandon, as a crash would.
		start := time.Now()
		e2, err := engine.OpenDurable(dir, s, p, cfg, pageSize, engine.DurableOptions{})
		if err != nil {
			return rep, err
		}
		recovery := time.Since(start)
		rep.Recovery = append(rep.Recovery, DurableRecoveryPoint{
			Ops:            w,
			WALBytes:       walBytes,
			Replayed:       e2.Replayed(),
			RecoveryMillis: float64(recovery.Microseconds()) / 1000,
		})
		if err := e2.Close(); err != nil {
			return rep, err
		}
	}

	// Curve 3: cold-cache serving. Populate, close, then reopen twice with
	// a pool far smaller than the population — once for the indexed
	// engine, once for the naive navigator — sweeping the value domain on
	// the cold pool and again on the warm one. Small pages and a 4-page
	// pool make the population exceed the pool at any workload size, so
	// the sweeps genuinely miss to disk.
	const coldPageSize, coldPool = 256, 4
	dir := filepath.Join(root, "cold")
	e, err := engine.OpenDurable(dir, s, p, cfg, coldPageSize, engine.DurableOptions{Policy: wal.SyncNever})
	if err != nil {
		return rep, err
	}
	d := newDurableDriver(seed)
	for i := 0; i < ops; i++ {
		if err := d.step(e); err != nil {
			return rep, fmt.Errorf("experiments: cold fill op %d: %w", i, err)
		}
	}
	vals := d.vals
	if err := e.Close(); err != nil {
		return rep, err
	}
	coldOpts := engine.DurableOptions{Policy: wal.SyncNever, PoolPages: coldPool}
	for _, backend := range []string{"optimal", "naive"} {
		e, err := engine.OpenDurable(dir, s, p, cfg, coldPageSize, coldOpts)
		if err != nil {
			return rep, err
		}
		query := func(v oodb.Value) error {
			var qerr error
			if backend == "optimal" {
				_, qerr = e.Query(v, "Person", true)
			} else {
				_, qerr = exec.NaiveQuery(e.Store(), p, v, "Person", true)
			}
			return qerr
		}
		for _, phase := range []string{"cold", "warm"} {
			before := e.Store().Pager().Stats()
			start := time.Now()
			for _, v := range vals {
				if err := query(v); err != nil {
					e.Close()
					return rep, fmt.Errorf("experiments: %s %s sweep: %w", backend, phase, err)
				}
			}
			elapsed := time.Since(start)
			after := e.Store().Pager().Stats()
			rep.Cold = append(rep.Cold, DurableColdPoint{
				Backend:        backend,
				Phase:          phase,
				Queries:        len(vals),
				MicrosPerQuery: float64(elapsed.Microseconds()) / float64(len(vals)),
				DiskReads:      after.Reads - before.Reads,
				PoolHits:       after.Hits - before.Hits,
			})
		}
		if err := e.Close(); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// Render returns the report as text.
func (r DurableReport) Render() string {
	t := NewTable(fmt.Sprintf("E5a — fsync-policy throughput (%d write ops)", r.Ops),
		"policy", "ops/sec", "fsyncs", "wal bytes")
	for _, p := range r.Policies {
		t.AddRow(p.Policy, fmt.Sprintf("%.0f", p.OpsPerSec), p.Fsyncs, p.WALBytes)
	}
	out := t.Render()

	t = NewTable("E5b — recovery time vs WAL length (no checkpoint, abandoned process)",
		"ops", "wal bytes", "replayed", "recovery ms")
	for _, p := range r.Recovery {
		t.AddRow(p.Ops, p.WALBytes, p.Replayed, fmt.Sprintf("%.2f", p.RecoveryMillis))
	}
	out += "\n" + t.Render()

	t = NewTable("E5c — cold-cache serving on disk (256 B pages, 4-page pool)",
		"backend", "phase", "queries", "µs/query", "disk reads", "pool hits")
	for _, p := range r.Cold {
		t.AddRow(p.Backend, p.Phase, p.Queries, fmt.Sprintf("%.1f", p.MicrosPerQuery), p.DiskReads, p.PoolHits)
	}
	return out + "\n" + t.Render()
}
