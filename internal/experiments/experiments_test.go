package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/model"
)

func TestFig6Report(t *testing.T) {
	r := RunFig6()
	if r.Result.Best.Cost != 8 {
		t.Errorf("cost = %g, want 8", r.Result.Best.Cost)
	}
	out := r.Render()
	for _, want := range []string{
		"{(S1-1, MX), (S2-4, NIX)}",
		"processing cost 8",
		"evaluated: 6 of 8",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFig8ReproducesExample51(t *testing.T) {
	r, err := RunFig8()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's optimal configuration: {(Per.owns.man, NIX),
	// (Comp.divs.name, MX)}.
	best := r.Result.Best
	if best.Degree() != 2 {
		t.Fatalf("degree = %d, want 2: %v", best.Degree(), best)
	}
	if best.Assignments[0] != (core.Assignment{A: 1, B: 2, Org: cost.NIX}) {
		t.Errorf("head assignment = %+v, want (1,2,NIX)", best.Assignments[0])
	}
	if best.Assignments[1] != (core.Assignment{A: 3, B: 4, Org: cost.MX}) {
		t.Errorf("tail assignment = %+v, want (3,4,MX)", best.Assignments[1])
	}
	// The paper explored 4 of the 8 recombinations; so do we.
	if r.Result.Stats.Evaluated != 4 {
		t.Errorf("evaluated = %d, want 4", r.Result.Stats.Evaluated)
	}
	if r.Result.Stats.TotalConfigurations != 8 {
		t.Errorf("total = %d, want 8", r.Result.Stats.TotalConfigurations)
	}
	// Splitting beats the whole-path NIX by a factor in the paper's
	// ballpark (paper: 2.67; the band allows for the unpublished physical
	// constants).
	if r.ImprovementFactor < 2 || r.ImprovementFactor > 4.5 {
		t.Errorf("improvement factor = %.2f, want within [2, 4.5] (paper: 2.67)", r.ImprovementFactor)
	}
	// Matrix sanity: Division.name has no subclasses and length 1, so the
	// three organizations cost the same (the paper's equivalence note).
	mx, _ := r.Matrix.Cell(4, 4, cost.MX)
	mix, _ := r.Matrix.Cell(4, 4, cost.MIX)
	nix, _ := r.Matrix.Cell(4, 4, cost.NIX)
	if math.Abs(mx-mix) > 1e-9 || math.Abs(mix-nix) > 1e-9 {
		t.Errorf("length-1 no-subclass row not equivalent: %g %g %g", mx, mix, nix)
	}
	out := r.Render()
	for _, want := range []string{"Person.owns.man, NIX", "Company.divs.name, MX", "paper: 16.03", "4 of 8"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestComplexityReport(t *testing.T) {
	r := RunComplexity(8, 10, 7)
	if len(r.Points) != 7 {
		t.Fatalf("points = %d", len(r.Points))
	}
	for _, p := range r.Points {
		if !p.Agree {
			t.Errorf("n=%d: branch-and-bound disagrees with exhaustive", p.N)
		}
		if p.MatrixCells != 3*p.N*(p.N+1)/2 {
			t.Errorf("n=%d: matrix cells = %d", p.N, p.MatrixCells)
		}
		if p.TotalConfigurations != 1<<(p.N-1) {
			t.Errorf("n=%d: total = %d", p.N, p.TotalConfigurations)
		}
		if p.BnBEvaluated > p.ExhaustiveEvaluated {
			t.Errorf("n=%d: BnB evaluated %d > exhaustive %d", p.N, p.BnBEvaluated, p.ExhaustiveEvaluated)
		}
		if p.DPEvaluated != p.N*(p.N+1)/2 {
			t.Errorf("n=%d: DP cells = %d, want %d", p.N, p.DPEvaluated, p.N*(p.N+1)/2)
		}
	}
	// Pruning must be visible at larger n.
	last := r.Points[len(r.Points)-1]
	if last.BnBEvaluated >= last.TotalConfigurations {
		t.Errorf("no pruning at n=%d", last.N)
	}
	if !strings.Contains(r.Render(), "2^(n-1)") {
		t.Error("render missing claim check")
	}
}

func TestValidationReport(t *testing.T) {
	r, err := RunValidation(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 12 { // 4 orgs x 3 operations
		t.Fatalf("rows = %d, want 12", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Predicted <= 0 || row.Measured <= 0 {
			t.Errorf("%v %s: non-positive costs %+v", row.Org, row.Operation, row)
		}
		// The model must agree with the running system within a small
		// constant factor — the band that preserves rankings.
		if row.Ratio < 0.3 || row.Ratio > 3 {
			t.Errorf("%v %s: measured/predicted = %.2f outside [0.3, 3]", row.Org, row.Operation, row.Ratio)
		}
	}
	// Ranking preservation, the property selection relies on: NIX queries
	// are cheapest and NIX maintenance dearest, in both worlds.
	get := func(org cost.Organization, op string) ValidationRow {
		for _, row := range r.Rows {
			if row.Org == org && row.Operation == op {
				return row
			}
		}
		t.Fatalf("missing row %v %s", org, op)
		return ValidationRow{}
	}
	for _, field := range []func(ValidationRow) float64{
		func(r ValidationRow) float64 { return r.Predicted },
		func(r ValidationRow) float64 { return r.Measured },
	} {
		if field(get(cost.NIX, "query Person")) >= field(get(cost.MX, "query Person")) {
			t.Error("NIX query not cheaper than MX")
		}
		if field(get(cost.NIX, "delete Vehicle")) <= field(get(cost.MX, "delete Vehicle")) {
			t.Error("NIX delete not dearer than MX")
		}
	}
	if !strings.Contains(r.Render(), "predicted") {
		t.Error("render broken")
	}
}

func TestWorkloadSweep(t *testing.T) {
	r, err := RunWorkloadSweep([]float64{0, 0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 3 {
		t.Fatalf("points = %d", len(r.Points))
	}
	pure := r.Points[2]
	// Pure queries: the whole-path NIX answers any query with one lookup —
	// it must be the optimum (the crossover the paper's trade-off implies).
	if pure.Best.Degree() != 1 || pure.Best.Assignments[0].Org != cost.NIX {
		t.Errorf("pure-query optimum = %v, want whole-path NIX", pure.Best)
	}
	// Pure updates: NIX on the whole path is far worse than the optimum.
	upd := r.Points[0]
	if upd.WholeNIX < 5*upd.Best.Cost {
		t.Errorf("pure-update: whole NIX %.2f not clearly worse than optimum %.2f", upd.WholeNIX, upd.Best.Cost)
	}
	for _, p := range r.Points {
		if err := p.Best.Validate(4); err != nil {
			t.Errorf("λ=%.2f: invalid config: %v", p.Lambda, err)
		}
	}
	if !strings.Contains(r.Render(), "query share") {
		t.Error("render broken")
	}
}

func TestShapeSweep(t *testing.T) {
	r, err := RunShapeSweep(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 6 {
		t.Fatalf("points = %d", len(r.Points))
	}
	for _, p := range r.Points {
		if err := p.Best.Validate(p.N); err != nil {
			t.Errorf("n=%d: %v", p.N, err)
		}
		if p.Best.Cost > p.Whole+1e-9 {
			t.Errorf("n=%d: optimum %.2f worse than whole-path %.2f", p.N, p.Best.Cost, p.Whole)
		}
		if p.BnB.Evaluated > p.BnB.TotalConfigurations {
			t.Errorf("n=%d: evaluated %d > total %d", p.N, p.BnB.Evaluated, p.BnB.TotalConfigurations)
		}
	}
	// Splitting must strictly win somewhere in the sweep.
	won := false
	for _, p := range r.Points {
		if p.Degree > 1 && p.Best.Cost < p.Whole-1e-9 {
			won = true
		}
	}
	if !won {
		t.Error("splitting never beat the whole-path index in the sweep")
	}
}

func TestChainStatsErrors(t *testing.T) {
	if _, err := ChainStats(0, 1, 1, 1, model.Load{}, model.PaperParams()); err == nil {
		t.Error("n=0 accepted")
	}
	ps, err := ChainStats(3, 100, 50, 2, model.Load{Alpha: 1}, model.PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	if ps.Len() != 3 {
		t.Errorf("chain length = %d", ps.Len())
	}
	if err := ps.Validate(); err != nil {
		t.Errorf("chain stats invalid: %v", err)
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("title", "a", "bee")
	tab.AddRow(1, 2.5)
	tab.AddRow("xx", "y")
	out := tab.Render()
	for _, want := range []string{"title", "a", "bee", "2.50", "xx"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Errorf("lines = %d", len(lines))
	}
}
