package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/oodb"
	"repro/internal/stats"
)

// ReconfigureReport records the online-reconfiguration experiment (E1):
// the engine serves two workload phases with opposite mixes; after each
// phase the drift, the re-selected configuration and the diff-build
// economy (structures reused vs rebuilt) are recorded.
type ReconfigureReport struct {
	Phases []ReconfigurePhase
}

// ReconfigurePhase is one workload phase's outcome.
type ReconfigurePhase struct {
	Name    string
	Ops     uint64
	Drift   float64
	From    core.Configuration
	To      core.Configuration
	Changed bool
	Reused  int
	Built   int
}

// RunReconfigure drives the lifecycle engine through a workload flip on a
// generated Figure 7 database: a query-heavy reporting phase the initial
// configuration was selected for, then an update-heavy ingest phase. Each
// phase ends with a synchronous Reconfigure; the second must swap.
func RunReconfigure(seed int64) (ReconfigureReport, error) {
	var rep ReconfigureReport
	g, err := gen.Generate(model.Figure7Stats(), 0.01, seed)
	if err != nil {
		return rep, err
	}
	assumed, err := stats.Collect(g.Store, g.Path, model.PaperParams())
	if err != nil {
		return rep, err
	}
	if err := assumed.SetLoad(1, "Person", model.Load{Alpha: 1}); err != nil {
		return rep, err
	}
	if err := assumed.SetLoad(4, "Division", model.Load{Beta: 0.02, Gamma: 0.02}); err != nil {
		return rep, err
	}
	initial, _, err := core.Select(assumed, cost.Organizations)
	if err != nil {
		return rep, err
	}
	e, err := engine.New(g.Store, g.Path, initial.Best, model.PaperParams().PageSize, engine.Options{
		Params:  model.PaperParams(),
		Assumed: assumed,
		MinOps:  32,
	})
	if err != nil {
		return rep, err
	}

	phase := func(name string, traffic func() error) error {
		if err := traffic(); err != nil {
			return err
		}
		w := e.WorkloadSnapshot()
		r, err := e.Reconfigure()
		if err != nil {
			return err
		}
		rep.Phases = append(rep.Phases, ReconfigurePhase{
			Name: name, Ops: w.Total, Drift: r.Drift,
			From: r.From, To: r.To, Changed: r.Changed,
			Reused: r.Reused, Built: r.Built,
		})
		return nil
	}

	if err := phase("reporting", func() error {
		for i := 0; i < 200; i++ {
			if _, err := e.Query(g.EndValues[i%len(g.EndValues)], "Person", false); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return rep, err
	}
	if err := phase("ingest", func() error {
		for i := 0; i < 200; i++ {
			oid, err := e.Insert("Division", map[string][]oodb.Value{"name": {g.EndValues[i%len(g.EndValues)]}})
			if err != nil {
				return err
			}
			if i%2 == 0 {
				if err := e.Delete(oid); err != nil {
					return err
				}
			}
		}
		return nil
	}); err != nil {
		return rep, err
	}
	return rep, nil
}

// Render returns the report as text.
func (r ReconfigureReport) Render() string {
	t := NewTable("E1 — online reconfiguration under workload drift",
		"phase", "ops", "drift", "swapped", "reused", "built", "configuration")
	for _, p := range r.Phases {
		cfg := p.From.String()
		if p.Changed {
			cfg = fmt.Sprintf("%v -> %v", p.From, p.To)
		}
		t.AddRow(p.Name, p.Ops, p.Drift, p.Changed, p.Reused, p.Built, cfg)
	}
	return t.Render()
}
