package experiments

import (
	"fmt"
	"strings"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/model"
	"repro/internal/storage"
)

// ExtendedReport is experiment X1: the Figure 7 selection with the full
// organization set — the paper's three columns plus the Section 6
// incorporations (path index PX, nested index NX) and the no-index option.
type ExtendedReport struct {
	Stats    *model.PathStats
	Matrix   *core.Matrix
	Result   core.Result
	Baseline core.Result // with the paper's three columns only
}

// RunExtended executes experiment X1.
func RunExtended() (ExtendedReport, error) {
	ps := model.Figure7Stats()
	m, err := core.NewMatrixFromStats(ps, cost.OrganizationsExtended)
	if err != nil {
		return ExtendedReport{}, err
	}
	base, err := core.NewMatrixFromStats(ps, cost.Organizations)
	if err != nil {
		return ExtendedReport{}, err
	}
	return ExtendedReport{Stats: ps, Matrix: m, Result: m.OptIndCon(), Baseline: base.OptIndCon()}, nil
}

// Render returns the report text.
func (r ExtendedReport) Render() string {
	var b strings.Builder
	b.WriteString(renderMatrix("Extended matrix — MX/MIX/NIX + PX/NX (Section 6 incorporations) + NONE", r.Matrix, r.Stats))
	fmt.Fprintf(&b, "\nOptimal with extended columns: %s (cost %.2f)\n", describeConfig(r.Stats, r.Result.Best), r.Result.Best.Cost)
	fmt.Fprintf(&b, "Optimal with the paper's columns: %s (cost %.2f)\n", describeConfig(r.Stats, r.Baseline.Best), r.Baseline.Best.Cost)
	return b.String()
}

// SelectivityPoint is one selectivity of experiment R1.
type SelectivityPoint struct {
	Selectivity float64
	Best        core.Configuration
	WholeNIX    float64
}

// SelectivityReport is experiment R1: the optimal configuration under
// range-predicate workloads of growing selectivity (Section 3's range
// extension).
type SelectivityReport struct {
	Points []SelectivityPoint
}

// RunSelectivitySweep executes experiment R1.
func RunSelectivitySweep(sels []float64) (SelectivityReport, error) {
	var rep SelectivityReport
	for _, sel := range sels {
		ps := model.Figure7Stats()
		ps.Selectivity = sel
		m, err := core.NewMatrixFromStats(ps, nil)
		if err != nil {
			return rep, err
		}
		r := m.OptIndCon()
		nix, _ := m.Cell(1, ps.Len(), cost.NIX)
		rep.Points = append(rep.Points, SelectivityPoint{Selectivity: sel, Best: r.Best, WholeNIX: nix})
	}
	return rep, nil
}

// Render returns the report text.
func (r SelectivityReport) Render() string {
	t := NewTable("Range-predicate sweep — optimal configuration vs selectivity (Figure 7 statistics)",
		"selectivity", "optimal configuration", "cost", "whole NIX")
	for _, p := range r.Points {
		t.AddRow(fmt.Sprintf("%.3f", p.Selectivity), p.Best.String(), p.Best.Cost, p.WholeNIX)
	}
	return t.Render()
}

// BufferPoint is one buffer capacity of experiment B1.
type BufferPoint struct {
	Capacity int
	Reads    uint64
	Hits     uint64
	HitRate  float64
}

// BufferReport is experiment B1: the paper's cost convention counts every
// record access as a page access (no buffering); this ablation measures
// how an LRU buffer pool changes effective reads on a B+-tree under a
// skewed lookup workload, quantifying the convention's conservatism.
type BufferReport struct {
	Keys    int
	Lookups int
	Points  []BufferPoint
}

// RunBufferAblation executes experiment B1.
func RunBufferAblation(keys, lookups int, capacities []int) (BufferReport, error) {
	rep := BufferReport{Keys: keys, Lookups: lookups}
	for _, cap := range capacities {
		pager, err := storage.NewPager(1024, cap)
		if err != nil {
			return rep, err
		}
		tr := btree.New(pager, "ablation")
		for i := 0; i < keys; i++ {
			tr.Insert([]byte(fmt.Sprintf("key-%06d", i)), []byte("payload-payload"))
		}
		pager.ResetStats()
		// Skewed access: 80% of lookups hit 20% of the keys.
		hot := keys / 5
		if hot < 1 {
			hot = 1
		}
		for i := 0; i < lookups; i++ {
			var k int
			if i%5 != 0 {
				k = (i * 7) % hot
			} else {
				k = (i * 13) % keys
			}
			tr.Get([]byte(fmt.Sprintf("key-%06d", k)))
		}
		s := pager.Stats()
		pt := BufferPoint{Capacity: cap, Reads: s.Reads, Hits: s.Hits}
		if total := s.Reads + s.Hits; total > 0 {
			pt.HitRate = float64(s.Hits) / float64(total)
		}
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}

// Render returns the report text.
func (r BufferReport) Render() string {
	t := NewTable(fmt.Sprintf("Buffer-pool ablation — %d keys, %d skewed lookups (80/20)", r.Keys, r.Lookups),
		"buffer pages", "page reads", "buffer hits", "hit rate")
	for _, p := range r.Points {
		t.AddRow(p.Capacity, p.Reads, p.Hits, fmt.Sprintf("%.1f%%", 100*p.HitRate))
	}
	var b strings.Builder
	b.WriteString(t.Render())
	b.WriteString("\nThe analytic model's no-buffer convention (capacity 0) upper-bounds real accesses;\n")
	b.WriteString("rankings between organizations are unaffected because all share the buffer.\n")
	return b.String()
}
