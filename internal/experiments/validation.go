package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cost"
	"repro/internal/gen"
	"repro/internal/index"
	"repro/internal/model"
	"repro/internal/oodb"
	"repro/internal/schema"
)

// ValidationRow compares the analytic cost model against page accesses
// measured on a working index structure for one organization/operation.
type ValidationRow struct {
	Org       cost.Organization
	Operation string
	Predicted float64 // analytic expected page accesses
	Measured  float64 // average page accesses on the working index
	Ratio     float64 // Measured / Predicted
}

// ValidationReport is experiment V1: the analytic model of Section 3
// versus the running structures, on a database generated to match the
// statistics the model is fed.
type ValidationReport struct {
	Rows []ValidationRow
	// ObjectCount documents the scale of the generated database.
	ObjectCount int
}

// validationStats is a materializable path-stats shape used by V1.
func validationStats() *model.PathStats {
	p := schema.PaperPathOwnsManDivsName()
	ps := model.NewPathStats(p, model.PaperParams())
	ps.MustSet(1, model.ClassStats{Class: "Person", N: 2000, D: 400, NIN: 1}, model.Load{Alpha: 1})
	ps.MustSet(2, model.ClassStats{Class: "Vehicle", N: 300, D: 60, NIN: 2}, model.Load{Alpha: 1})
	ps.MustSet(2, model.ClassStats{Class: "Bus", N: 150, D: 30, NIN: 2}, model.Load{})
	ps.MustSet(2, model.ClassStats{Class: "Truck", N: 150, D: 30, NIN: 2}, model.Load{})
	ps.MustSet(3, model.ClassStats{Class: "Company", N: 60, D: 60, NIN: 2}, model.Load{})
	ps.MustSet(4, model.ClassStats{Class: "Division", N: 60, D: 60, NIN: 1}, model.Load{Alpha: 1})
	return ps
}

// measureStats re-derives PathStats from the materialized database so the
// analytic model is fed the true cardinalities rather than the design
// targets.
func measureStats(g *gen.Generated, params model.Params) *model.PathStats {
	ps := model.NewPathStats(g.Path, params)
	for l := 1; l <= g.Path.Len(); l++ {
		attr := g.Path.Attr(l)
		for _, cn := range g.Path.HierarchyAt(l) {
			oids := g.ByClass[cn]
			distinct := make(map[string]bool)
			var valueCount int
			for _, oid := range oids {
				obj, _ := g.Store.Peek(oid)
				for _, v := range obj.Values(attr) {
					distinct[v.String()] = true
					valueCount++
				}
			}
			n := float64(len(oids))
			cs := model.ClassStats{Class: cn, N: n, D: float64(len(distinct)), NIN: 1}
			if n > 0 {
				cs.NIN = float64(valueCount) / n
			}
			if cs.D == 0 {
				cs.D = 1
			}
			ps.MustSet(l, cs, model.Load{})
		}
	}
	return ps
}

// RunValidation executes experiment V1: generates the database, builds each
// organization over the full path, and compares predicted versus measured
// page accesses for queries and maintenance.
func RunValidation(seed int64) (ValidationReport, error) {
	design := validationStats()
	g, err := gen.Generate(design, 1, seed)
	if err != nil {
		return ValidationReport{}, err
	}
	measured := measureStats(g, design.Params)
	n := measured.Len()
	rep := ValidationReport{ObjectCount: g.Store.Len()}

	builders := []struct {
		org   cost.Organization
		build func() (index.PathIndex, error)
	}{
		{cost.MX, func() (index.PathIndex, error) { return index.NewMultiIndex(g.Path, 1, n, design.Params.PageSize) }},
		{cost.MIX, func() (index.PathIndex, error) {
			return index.NewMultiInheritedIndex(g.Path, 1, n, design.Params.PageSize)
		}},
		{cost.NIX, func() (index.PathIndex, error) {
			return index.NewNestedInheritedIndex(g.Path, 1, n, design.Params.PageSize)
		}},
		{cost.PX, func() (index.PathIndex, error) {
			return index.NewPathIndexPX(g.Store, g.Path, 1, n, design.Params.PageSize)
		}},
	}
	for _, b := range builders {
		ix, err := b.build()
		if err != nil {
			return rep, err
		}
		if err := loadIndex(g, ix); err != nil {
			return rep, err
		}
		ev, err := cost.NewEvaluator(measured, 1, n, b.org)
		if err != nil {
			return rep, err
		}

		// Query with respect to the starting class.
		predQ, err := ev.Query(1, "Person")
		if err != nil {
			return rep, err
		}
		ix.ResetStats()
		queries := 0
		for _, v := range g.EndValues {
			if queries >= 30 {
				break
			}
			if _, err := ix.Lookup(v, "Person", false); err != nil {
				return rep, err
			}
			queries++
		}
		measQ := float64(ix.Stats().Accesses()) / float64(queries)
		rep.Rows = append(rep.Rows, row(b.org, "query Person", predQ, measQ))

		// Insertion of a Person.
		predI, err := ev.Insert(1, "Person")
		if err != nil {
			return rep, err
		}
		vehPool := g.ByClass["Vehicle"]
		ix.ResetStats()
		inserts := 20
		for i := 0; i < inserts; i++ {
			oid, err := g.Store.Insert("Person", map[string][]oodb.Value{
				"owns": {oodb.RefV(vehPool[i%len(vehPool)])},
			})
			if err != nil {
				return rep, err
			}
			obj, _ := g.Store.Peek(oid)
			if err := ix.OnInsert(obj); err != nil {
				return rep, err
			}
		}
		measI := float64(ix.Stats().Accesses()) / float64(inserts)
		rep.Rows = append(rep.Rows, row(b.org, "insert Person", predI, measI))

		// Deletion of a Vehicle.
		predD, err := ev.Delete(2, "Vehicle")
		if err != nil {
			return rep, err
		}
		ix.ResetStats()
		deletes := 20
		for i := 0; i < deletes; i++ {
			oid := g.ByClass["Vehicle"][len(g.ByClass["Vehicle"])-1-i]
			obj, _ := g.Store.Peek(oid)
			if err := ix.OnDelete(obj); err != nil {
				return rep, err
			}
		}
		measD := float64(ix.Stats().Accesses()) / float64(deletes)
		rep.Rows = append(rep.Rows, row(b.org, "delete Vehicle", predD, measD))

		// Rebuild state for the next organization: vehicles were removed
		// from this index only, not the store, so the store is re-generated.
		g, err = gen.Generate(design, 1, seed)
		if err != nil {
			return rep, err
		}
		measured = measureStats(g, design.Params)
	}
	return rep, nil
}

func row(org cost.Organization, op string, pred, meas float64) ValidationRow {
	r := ValidationRow{Org: org, Operation: op, Predicted: pred, Measured: meas}
	if pred > 0 {
		r.Ratio = meas / pred
	}
	return r
}

func loadIndex(g *gen.Generated, ix index.PathIndex) error {
	for l := g.Path.Len(); l >= 1; l-- {
		for _, cn := range g.Path.HierarchyAt(l) {
			for _, oid := range g.ByClass[cn] {
				obj, _ := g.Store.Peek(oid)
				if err := ix.OnInsert(obj); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Render returns the report text.
func (r ValidationReport) Render() string {
	t := NewTable(fmt.Sprintf("Cost-model validation — analytic vs measured page accesses (%d objects)", r.ObjectCount),
		"org", "operation", "predicted", "measured", "measured/predicted")
	for _, row := range r.Rows {
		t.AddRow(row.Org.String(), row.Operation, row.Predicted, row.Measured, row.Ratio)
	}
	var b strings.Builder
	b.WriteString(t.Render())
	b.WriteString("\nThe model predicts expected page accesses; agreement within a small constant factor\n")
	b.WriteString("validates the ranking the selection algorithm relies on (see DESIGN.md §6).\n")
	return b.String()
}
