package ooindex_test

import (
	"fmt"

	ooindex "repro"
)

// ExampleOpen builds a tiny Figure 1 database, indexes the path
// Person.owns.man.name with a whole-path nested inherited index, and
// answers a nested-predicate query through the lifecycle-managed engine.
func ExampleOpen() {
	s := ooindex.PaperSchema() // persons own vehicles made by companies
	st, err := ooindex.NewStore(s, 4096)
	if err != nil {
		panic(err)
	}
	fiat, _ := st.Insert("Company", map[string][]ooindex.Value{"name": {ooindex.StrV("Fiat")}})
	daf, _ := st.Insert("Company", map[string][]ooindex.Value{"name": {ooindex.StrV("Daf")}})
	car, _ := st.Insert("Vehicle", map[string][]ooindex.Value{"man": {ooindex.RefV(fiat)}})
	bus, _ := st.Insert("Bus", map[string][]ooindex.Value{"man": {ooindex.RefV(daf)}})
	st.Insert("Person", map[string][]ooindex.Value{"owns": {ooindex.RefV(car)}})
	st.Insert("Person", map[string][]ooindex.Value{"owns": {ooindex.RefV(car), ooindex.RefV(bus)}})

	p, err := ooindex.NewPath(s, "Person", "owns", "man", "name")
	if err != nil {
		panic(err)
	}
	cfg := ooindex.Configuration{Assignments: []ooindex.Assignment{
		{A: 1, B: 3, Org: ooindex.NIX},
	}}
	db, err := ooindex.Open(st, p, cfg, 4096)
	if err != nil {
		panic(err)
	}

	owners, err := db.Query(ooindex.StrV("Fiat"), "Person", false)
	if err != nil {
		panic(err)
	}
	fmt.Println("people owning a Fiat-made vehicle:", len(owners))
	// Output:
	// people owning a Fiat-made vehicle: 2
}

// ExampleDatabase_Update re-links a vehicle to another manufacturer in
// place: the single Update both mutates the store and incrementally
// repairs every affected index entry, so the old and new nested values
// answer correctly immediately.
func ExampleDatabase_Update() {
	s := ooindex.PaperSchema()
	st, _ := ooindex.NewStore(s, 4096)
	fiat, _ := st.Insert("Company", map[string][]ooindex.Value{"name": {ooindex.StrV("Fiat")}})
	daf, _ := st.Insert("Company", map[string][]ooindex.Value{"name": {ooindex.StrV("Daf")}})
	car, _ := st.Insert("Vehicle", map[string][]ooindex.Value{"man": {ooindex.RefV(fiat)}})
	st.Insert("Person", map[string][]ooindex.Value{"owns": {ooindex.RefV(car)}})

	p, _ := ooindex.NewPath(s, "Person", "owns", "man", "name")
	cfg := ooindex.Configuration{Assignments: []ooindex.Assignment{
		{A: 1, B: 3, Org: ooindex.NIX},
	}}
	db, err := ooindex.Open(st, p, cfg, 4096)
	if err != nil {
		panic(err)
	}

	// The car switches manufacturer: one in-place reference re-link.
	if err := db.Update(car, map[string][]ooindex.Value{"man": {ooindex.RefV(daf)}}); err != nil {
		panic(err)
	}

	fiatOwners, _ := db.Query(ooindex.StrV("Fiat"), "Person", false)
	dafOwners, _ := db.Query(ooindex.StrV("Daf"), "Person", false)
	fmt.Println("Fiat owners:", len(fiatOwners))
	fmt.Println("Daf owners:", len(dafOwners))
	// Output:
	// Fiat owners: 0
	// Daf owners: 1
}

// ExampleOpenSharded partitions a database across two shards by OID
// hash: each path-instance tree is co-located on one shard (InsertAt
// places its root, references route the rest), OID-keyed operations
// resolve their shard with one modulo, and value queries fan out across
// shards and merge — returning exactly what a single engine holding all
// the objects would.
func ExampleOpenSharded() {
	p := ooindex.PaperPath() // Person.owns.man.name over the Figure 1 schema
	cfg := ooindex.Configuration{Assignments: []ooindex.Assignment{
		{A: 1, B: 3, Org: ooindex.NIX},
	}}
	db, err := ooindex.OpenSharded(p, cfg, 4096, 2, ooindex.EngineOptions{})
	if err != nil {
		panic(err)
	}

	// One company-vehicle-person tree per shard.
	fiat, _ := db.InsertAt(0, "Company", map[string][]ooindex.Value{"name": {ooindex.StrV("Fiat")}})
	daf, _ := db.InsertAt(1, "Company", map[string][]ooindex.Value{"name": {ooindex.StrV("Daf")}})
	car, _ := db.Insert("Vehicle", map[string][]ooindex.Value{"man": {ooindex.RefV(fiat)}}) // follows Fiat to shard 0
	bus, _ := db.Insert("Bus", map[string][]ooindex.Value{"man": {ooindex.RefV(daf)}})      // follows Daf to shard 1
	db.Insert("Person", map[string][]ooindex.Value{"owns": {ooindex.RefV(car)}})
	db.Insert("Person", map[string][]ooindex.Value{"owns": {ooindex.RefV(bus)}})

	fiatOwners, err := db.Query(ooindex.StrV("Fiat"), "Person", false)
	if err != nil {
		panic(err)
	}
	dafOwners, _ := db.Query(ooindex.StrV("Daf"), "Person", false)
	fmt.Println("shards:", db.NumShards())
	fmt.Println("Fiat owners:", len(fiatOwners))
	fmt.Println("Daf owners:", len(dafOwners))
	fmt.Println("Fiat tree on shard", db.ShardOf(car), "- Daf tree on shard", db.ShardOf(bus))
	// Output:
	// shards: 2
	// Fiat owners: 1
	// Daf owners: 1
	// Fiat tree on shard 0 - Daf tree on shard 1
}

// ExampleDatabase_QueryBatch evaluates a batch of point probes against
// one snapshot of the active configuration; results come back in probe
// order, bit-identical to issuing the probes sequentially.
func ExampleDatabase_QueryBatch() {
	s := ooindex.PaperSchema()
	st, _ := ooindex.NewStore(s, 4096)
	fiat, _ := st.Insert("Company", map[string][]ooindex.Value{"name": {ooindex.StrV("Fiat")}})
	daf, _ := st.Insert("Company", map[string][]ooindex.Value{"name": {ooindex.StrV("Daf")}})
	car, _ := st.Insert("Vehicle", map[string][]ooindex.Value{"man": {ooindex.RefV(fiat)}})
	bus, _ := st.Insert("Bus", map[string][]ooindex.Value{"man": {ooindex.RefV(daf)}})
	st.Insert("Person", map[string][]ooindex.Value{"owns": {ooindex.RefV(car), ooindex.RefV(bus)}})

	p, _ := ooindex.NewPath(s, "Person", "owns", "man", "name")
	cfg := ooindex.Configuration{Assignments: []ooindex.Assignment{
		{A: 1, B: 3, Org: ooindex.NIX},
	}}
	db, err := ooindex.Open(st, p, cfg, 4096)
	if err != nil {
		panic(err)
	}

	results, err := db.QueryBatch([]ooindex.Probe{
		{Value: ooindex.StrV("Fiat"), TargetClass: "Person"},
		{Value: ooindex.StrV("Daf"), TargetClass: "Vehicle", Hierarchy: true},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("persons reaching Fiat:", len(results[0]))
	fmt.Println("vehicles (with subclasses) reaching Daf:", len(results[1]))
	// Output:
	// persons reaching Fiat: 1
	// vehicles (with subclasses) reaching Daf: 1
}
