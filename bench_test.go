// Benchmarks regenerating every figure and table of the paper's evaluation
// (see DESIGN.md §6 for the experiment index). Each benchmark prints the
// paper-relevant metrics once via b.Log when run with -v; the benchmark
// timings themselves measure the cost of the reproduction machinery.
//
//	go test -bench=. -benchmem
package ooindex

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/oodb"
)

// BenchmarkFig6Selection regenerates Figure 6's walkthrough: the
// branch-and-bound selection over the hypothetical matrix.
func BenchmarkFig6Selection(b *testing.B) {
	m := core.Figure6Matrix()
	var r core.Result
	for i := 0; i < b.N; i++ {
		r = m.OptIndCon()
	}
	b.ReportMetric(float64(r.Stats.Evaluated), "configs-evaluated")
	b.ReportMetric(r.Best.Cost, "optimal-cost")
}

// BenchmarkFig8Matrix regenerates Figure 8: the full cost matrix from the
// Figure 7 statistics plus the optimal configuration of Example 5.1.
func BenchmarkFig8Matrix(b *testing.B) {
	var rep experiments.Fig8Report
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = experiments.RunFig8()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.Result.Best.Cost, "optimal-cost")
	b.ReportMetric(rep.WholePathNIX, "whole-path-NIX")
	b.ReportMetric(rep.ImprovementFactor, "improvement-factor")
	b.ReportMetric(float64(rep.Result.Stats.Evaluated), "configs-evaluated")
}

// selectionLengths are the path lengths of the Section 5 complexity
// comparison (experiment C1). 20 is the longest length at which the
// exhaustive baseline (2^19 recombinations) still finishes in seconds.
var selectionLengths = []int{4, 8, 12, 16, 20}

// BenchmarkSelectionBnB / Exhaustive / DP regenerate the Section 5
// complexity comparison (experiment C1) over a fixed, pre-built matrix.
// The Into variants reuse the result buffer, so with the dense matrix the
// search loops run with 0 allocs/op (checked by -benchmem).
func benchSelection(b *testing.B, n int, run func(*core.Matrix, *core.Result)) {
	ps, err := experiments.ChainStats(n, 20000, 2000, 2,
		model.Load{Alpha: 0.3, Beta: 0.1, Gamma: 0.1}, model.PaperParams())
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.NewMatrixFromStats(ps, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var r core.Result
	for i := 0; i < b.N; i++ {
		run(m, &r)
	}
	b.ReportMetric(float64(r.Stats.Evaluated), "configs-evaluated")
}

func BenchmarkSelectionBnB(b *testing.B) {
	for _, n := range selectionLengths {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchSelection(b, n, (*core.Matrix).OptIndConInto)
		})
	}
}

func BenchmarkSelectionExhaustive(b *testing.B) {
	for _, n := range selectionLengths {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchSelection(b, n, (*core.Matrix).ExhaustiveInto)
		})
	}
}

func BenchmarkSelectionDP(b *testing.B) {
	for _, n := range selectionLengths {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchSelection(b, n, (*core.Matrix).DPInto)
		})
	}
}

// BenchmarkCostMatrix measures Cost_Matrix construction alone (the
// dominant term the paper's complexity discussion identifies for
// practical path lengths), on Figure 7 and on longer chains where the
// bounded worker pool engages.
func BenchmarkCostMatrix(b *testing.B) {
	b.Run("fig7", func(b *testing.B) {
		ps := model.Figure7Stats()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.NewMatrixFromStats(ps, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, n := range []int{8, 16} {
		b.Run(fmt.Sprintf("chain-n=%d", n), func(b *testing.B) {
			ps, err := experiments.ChainStats(n, 20000, 2000, 2,
				model.Load{Alpha: 0.3, Beta: 0.1, Gamma: 0.1}, model.PaperParams())
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.NewMatrixFromStats(ps, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkValidation regenerates experiment V1 (analytic vs measured).
func BenchmarkValidation(b *testing.B) {
	var rep experiments.ValidationReport
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = experiments.RunValidation(42)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range rep.Rows {
		op := strings.ReplaceAll(row.Operation, " ", "-")
		b.ReportMetric(row.Ratio, row.Org.String()+"/"+op+"/ratio")
	}
}

// BenchmarkWorkloadSweep regenerates experiment W1.
func BenchmarkWorkloadSweep(b *testing.B) {
	lambdas := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunWorkloadSweep(lambdas); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPathLengthSweep regenerates experiment S1.
func BenchmarkPathLengthSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunShapeSweep(8); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDB builds a small physical database with one configuration for the
// index-operation benchmarks.
func benchDB(b *testing.B, cfg core.Configuration) (*gen.Generated, *exec.Configured) {
	b.Helper()
	ps := Figure7Stats()
	g, err := gen.Generate(ps, 0.002, 42)
	if err != nil {
		b.Fatal(err)
	}
	db, err := exec.NewConfigured(g.Store, g.Path, cfg, ps.Params.PageSize)
	if err != nil {
		b.Fatal(err)
	}
	db.ResetStats() // exclude bulk-load accesses from per-op metrics
	g.Store.Pager().ResetStats()
	return g, db
}

// BenchmarkQueryConfigured measures point queries through the Example 5.1
// optimal configuration on a materialized database.
func BenchmarkQueryConfigured(b *testing.B) {
	cfg := core.Configuration{Assignments: []core.Assignment{
		{A: 1, B: 2, Org: NIX}, {A: 3, B: 4, Org: MX},
	}}
	g, db := benchDB(b, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(g.EndValues[i%len(g.EndValues)], "Person", false); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(db.IndexStats().Accesses())/float64(b.N), "page-accesses/op")
}

// BenchmarkQueryNaive measures the same queries by forward navigation.
func BenchmarkQueryNaive(b *testing.B) {
	ps := Figure7Stats()
	g, err := gen.Generate(ps, 0.002, 42)
	if err != nil {
		b.Fatal(err)
	}
	g.Store.Pager().ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.NaiveQuery(g.Store, g.Path, g.EndValues[i%len(g.EndValues)], "Person", false); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(g.Store.Pager().Stats().Accesses())/float64(b.N), "page-accesses/op")
}

// BenchmarkMaintenance measures insert+delete round-trips through each
// whole-path organization.
func BenchmarkMaintenance(b *testing.B) {
	for _, org := range Organizations {
		b.Run(org.String(), func(b *testing.B) {
			cfg := core.Configuration{Assignments: []core.Assignment{{A: 1, B: 4, Org: org}}}
			g, db := benchDB(b, cfg)
			veh := g.ByClass["Vehicle"]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				oid, err := db.Insert("Person", map[string][]Value{
					"owns": {RefV(veh[i%len(veh)])},
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := db.Delete(oid); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(db.IndexStats().Accesses())/float64(b.N), "page-accesses/op")
		})
	}
}

// BenchmarkSelectMulti measures the multi-path extension.
func BenchmarkSelectMulti(b *testing.B) {
	psA := Figure7Stats()
	psB := Figure7Stats()
	for i := 0; i < b.N; i++ {
		if _, err := SelectMulti([]*PathStats{psA, psB}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSelectBatch measures the batched selection API: many paths per
// call, one worker per CPU, matrix buffers recycled through a sync.Pool
// across paths and calls (the repeated-batch steady state is the target of
// the ≥10x claim in DESIGN.md §6).
func BenchmarkSelectBatch(b *testing.B) {
	for _, paths := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("paths=%d", paths), func(b *testing.B) {
			pss := make([]*PathStats, paths)
			for i := range pss {
				pss[i] = Figure7Stats()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := SelectBatch(pss, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(paths)/float64(b.Elapsed().Seconds())*float64(b.N), "paths/sec")
		})
	}
}

// BenchmarkExtendedSelection regenerates experiment X1 (PX/NX/NONE columns).
func BenchmarkExtendedSelection(b *testing.B) {
	var rep experiments.ExtendedReport
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = experiments.RunExtended()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.Result.Best.Cost, "extended-optimal-cost")
	b.ReportMetric(rep.Baseline.Best.Cost, "baseline-optimal-cost")
}

// BenchmarkSelectivitySweep regenerates experiment R1 (range predicates).
func BenchmarkSelectivitySweep(b *testing.B) {
	sels := []float64{0, 0.001, 0.01, 0.05, 0.2}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunSelectivitySweep(sels); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBufferAblation regenerates experiment B1 (buffer pool).
func BenchmarkBufferAblation(b *testing.B) {
	var rep experiments.BufferReport
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = experiments.RunBufferAblation(2000, 5000, []int{0, 16, 64})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.Points[len(rep.Points)-1].HitRate, "hit-rate-64")
}

// BenchmarkQueryRangeConfigured measures range queries through a working
// configuration (experiment R1's physical counterpart).
func BenchmarkQueryRangeConfigured(b *testing.B) {
	cfg := core.Configuration{Assignments: []core.Assignment{
		{A: 1, B: 2, Org: NIX}, {A: 3, B: 4, Org: MX},
	}}
	g, db := benchDB(b, cfg)
	lo, hi := g.EndValues[0], g.EndValues[len(g.EndValues)/2]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.QueryRange(lo, hi, "Person", false); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(db.IndexStats().Accesses())/float64(b.N), "page-accesses/op")
}

// BenchmarkServe measures the serving path under concurrency (experiment
// E2's microbenchmark): g goroutines drive steady-state point queries
// through the lifecycle engine on the Example 5.1 optimal configuration,
// each with a reused result buffer, so the per-op report shows 0 allocs
// and the ops/sec metric exposes the 1→8 goroutine scaling curve. Reads
// are lock-free end to end (atomic set snapshot, sync.Map page table,
// striped counters), so on a multi-core host throughput scales near-
// linearly with GOMAXPROCS.
func BenchmarkServe(b *testing.B) {
	ps := Figure7Stats()
	g, err := gen.Generate(ps, 0.01, 42)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Configuration{Assignments: []core.Assignment{
		{A: 1, B: 2, Org: NIX}, {A: 3, B: 4, Org: MX},
	}}
	db, err := Open(g.Store, g.Path, cfg, ps.Params.PageSize)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("goroutines=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				n := b.N / workers
				if w < b.N%workers {
					n++
				}
				wg.Add(1)
				go func(w, n int) {
					defer wg.Done()
					var buf []oodb.OID
					var err error
					for i := 0; i < n; i++ {
						v := g.EndValues[(w*7919+i)%len(g.EndValues)]
						if buf, err = db.QueryInto(buf[:0], v, "Person", false); err != nil {
							b.Error(err)
							return
						}
					}
				}(w, n)
			}
			wg.Wait()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/sec")
		})
	}
}

// BenchmarkServeBatch measures the batched probe API: one QueryBatch call
// per b.N/batch operations, fanned across the worker pool.
func BenchmarkServeBatch(b *testing.B) {
	ps := Figure7Stats()
	g, err := gen.Generate(ps, 0.01, 42)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Configuration{Assignments: []core.Assignment{
		{A: 1, B: 2, Org: NIX}, {A: 3, B: 4, Org: MX},
	}}
	db, err := Open(g.Store, g.Path, cfg, ps.Params.PageSize)
	if err != nil {
		b.Fatal(err)
	}
	const batch = 256
	probes := make([]Probe, batch)
	for i := range probes {
		probes[i] = Probe{Value: g.EndValues[i%len(g.EndValues)], TargetClass: "Person"}
	}
	b.ReportAllocs()
	b.ResetTimer()
	ops := 0
	for i := 0; i < b.N; i++ {
		if _, err := db.QueryBatch(probes); err != nil {
			b.Fatal(err)
		}
		ops += batch
	}
	b.ReportMetric(float64(ops)/b.Elapsed().Seconds(), "probes/sec")
}

// BenchmarkReconfigure measures one online configuration swap (experiment
// E1's hot path): the engine diff-builds the changed tail of the
// configuration — the shared (1-2, NIX) head is reused, not rebuilt — and
// atomically swaps the index set.
func BenchmarkReconfigure(b *testing.B) {
	ps := Figure7Stats()
	g, err := gen.Generate(ps, 0.002, 42)
	if err != nil {
		b.Fatal(err)
	}
	cfgA := core.Configuration{Assignments: []core.Assignment{
		{A: 1, B: 2, Org: NIX}, {A: 3, B: 4, Org: MX},
	}}
	cfgB := core.Configuration{Assignments: []core.Assignment{
		{A: 1, B: 2, Org: NIX}, {A: 3, B: 3, Org: MX}, {A: 4, B: 4, Org: MX},
	}}
	db, err := Open(g.Store, g.Path, cfgA, ps.Params.PageSize)
	if err != nil {
		b.Fatal(err)
	}
	var reused, built int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next := cfgB
		if i%2 == 1 {
			next = cfgA
		}
		rep, err := db.ApplyConfiguration(next)
		if err != nil {
			b.Fatal(err)
		}
		reused += rep.Reused
		built += rep.Built
	}
	b.StopTimer()
	b.ReportMetric(float64(reused)/float64(b.N), "structures-reused/op")
	b.ReportMetric(float64(built)/float64(b.N), "structures-built/op")
}
