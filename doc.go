// Package ooindex selects optimal index configurations for paths in
// object-oriented databases, reproducing "On the Selection of Optimal
// Index Configuration in OO Databases" (Choenni, Bertino, Blanken, Chang;
// ICDE 1994).
//
// A database operation against a nested predicate processes a path
// P = C1.A1.A2...An through the aggregation hierarchy. Indexing the whole
// path with a single organization is often suboptimal: the paper's idea is
// to split the path into subpaths and allocate the cheapest index
// organization — multi-index (MX), multi-inherited index (MIX) or nested
// inherited index (NIX) — to each subpath, minimizing the workload's total
// page accesses. This package provides:
//
//   - the schema and path model (Definition 2.1), with the paper's Figure 1
//     example schema built in;
//   - the statistics and workload model of Section 3.2;
//   - the analytic cost models of Section 3 (Yao's function, CRL/CML/CRT/
//     CMT, per-organization query and maintenance costs, the Definition 4.2
//     boundary cost);
//   - the selection algorithm of Section 5 (cost matrix, per-subpath
//     minima, branch-and-bound over the 2^(n-1) recombinations) plus
//     exhaustive and dynamic-programming baselines;
//   - working implementations of all five index organizations (SIX, IIX,
//     MX, MIX, NIX with primary and auxiliary structures) over a paged
//     object store and B+-tree, with page-access accounting;
//   - an executor that runs queries and updates through a configuration,
//     and a synthetic database generator;
//   - the paper's extensions (Section 6): a no-index option and greedy
//     selection across multiple paths;
//   - a lifecycle engine that closes the selection loop online: it records
//     the live workload, detects drift, re-selects and reconfigures the
//     running database without blocking queries;
//   - a sharded engine (OpenSharded) that partitions the OID space across
//     N independent lifecycle engines, routes writes by OID hash, fans
//     value queries out and merges, and re-selects per shard;
//   - durable deployments (OpenDurable, OpenShardedDurable): a disk-backed
//     buffer pool, a write-ahead log with selectable fsync policy, and
//     checkpoint-based crash recovery, gated by fault-injection tests;
//   - a conjunctive-predicate planner (NewPlanner) that compiles
//     And/Or/Eq/Range trees over several registered paths into
//     selectivity-ordered probe plans, intersecting candidate OID sets
//     with a galloping zero-allocation kernel.
//
// # Quick start
//
//	ps := ooindex.Figure7Stats()            // path + statistics + workload
//	res, matrix, err := ooindex.Select(ps, nil)
//	if err != nil { ... }
//	fmt.Println(res.Best)                   // {(S1-2, NIX), (S3-4, MX)}
//	_ = matrix                              // inspect per-subpath costs
//
// # Performance
//
// The selection engine is built for throughput. The cost matrix is a
// dense triangular array — Cell and MinCost are O(1) array loads, with
// the per-subpath minima precomputed at construction — and the search
// procedures (OptIndCon, Exhaustive, DP) are iterative and
// allocation-free over a fixed matrix: their Into variants reuse the
// caller's result buffers and report 0 allocs/op under -benchmem.
// Matrix construction parallelizes the independent subpath cells over a
// bounded worker pool and memoizes the per-level index geometries, noid
// chains and Yao evaluations that adjacent subpaths share; the memoized
// path is bit-identical to the straightforward one (enforced by
// equivalence tests). On the reference container this makes the n=12
// branch-and-bound about 20x faster than the map-backed seed engine and
// Figure 7 matrix construction about 2.4x faster on a single core, with
// construction additionally scaling across cores.
//
// For many paths, SelectBatch selects concurrently (one worker per CPU)
// and recycles matrix buffers through a sync.Pool; SelectMulti fans its
// per-path selections out the same way. The storage pager behind the
// working indexes uses an O(1) intrusive-list LRU and atomic statistics
// counters, so concurrent readers do not serialize on bookkeeping. See
// DESIGN.md for measured numbers.
//
// # Engine
//
// The paper selects a configuration once, from assumed workload
// frequencies; Open returns a lifecycle-managed engine that keeps
// selecting. Every query, insert and delete is counted per class by a
// lock-free recorder on the execution paths. When the observed operation
// mix drifts beyond a threshold from the mix the active configuration was
// selected for (total-variation distance over the Section 3.2 load
// triplets), the engine re-collects statistics from the live store,
// merges the observed frequencies in, re-runs the Section 5 selection,
// and swaps configurations online: only the subpath indexes absent from
// the old configuration are built — unchanged assignments keep their
// live, continuously maintained structures — and the new index set is
// published atomically. Queries take a read-locked snapshot of the active
// set, so they are never blocked by a reconfiguration and never observe a
// half-built configuration. Drive the loop manually (Advise,
// Reconfigure, ApplyConfiguration) or let the engine check drift every
// CheckEvery operations and retune in the background; see
// examples/selftuning.
//
// # Throughput
//
// The serving path is built for GOMAXPROCS-parallel readers: queries
// take no locks beyond the active set's read-locked snapshot — the
// pager's page table is lock-free with striped, cache-line-padded
// counters, the workload recorder is per-cell padded atomics, and every
// layer exposes an Into-style kernel (Database.QueryInto down through
// btree.GetInto) that appends into caller buffers. A steady-state point
// query through the Example 5.1 optimal configuration runs with 0
// allocs/op (test-enforced), at ~31 µs/op on the single-core reference
// container (BenchmarkServe, which also reports the 1→8 goroutine
// ops/sec scaling curve on multi-core hosts). Database.QueryBatch fans a
// probe slice across one worker per CPU with pooled per-worker scratch,
// returning results in probe order, bit-identical to sequential
// evaluation; large intermediate OID sets inside a single nested query
// fan their per-key probes out in parallel the same way. Experiment E2
// (ixbench -run serve) measures ops/sec, p50/p99 latency and pages/op
// for optimal vs whole-path-NIX vs naive serving and writes
// BENCH_serve.json.
//
// # Updates
//
// The write path is complete CRUD: Database.Update applies in-place
// attribute changes and reference re-links, returning the database to a
// state indistinguishable from a fresh index build (enforced by a
// differential test that interleaves thousands of random inserts, updates
// and deletes). Maintenance is incremental per organization — MX/MIX diff
// the changed values and touch only the records whose membership moves;
// NIX repairs the affected primary records with a numchild cascade in
// both directions (cascadeRemove for keys left, cascadeAdd re-keying the
// ancestor chain for keys gained, through the auxiliary index rather than
// the database); PX and NX re-derive affected entries by navigation, the
// trade-off their cost models charge for. An update that does not touch
// the indexed path attribute costs zero index page accesses.
// Database.UpdateBatch shards a batch over one worker per CPU (updates to
// one object keep their order; the batch serializes with configuration
// swaps as a group), reporting per-update errors. Updates are recorded as
// their own operation kind, surface in WorkloadSnapshot, and enter drift
// and re-selection as half an insertion plus half a deletion — so an
// update-heavy shift in the mix retunes the configuration like any other
// drift. Experiment E3 (ixbench -run maintain) measures realized
// maintenance cost — pages/op by operation kind and ops/sec at mixed
// read/write ratios — and writes BENCH_maintain.json; DESIGN.md §5
// records the per-organization formulas and the measured shape.
//
// # Sharding
//
// OpenSharded composes N independent engines into one OID-hash-
// partitioned database, the horizontal scaling step past a single
// engine. Shard i's store only mints OIDs congruent to i mod N, so
// routing any OID-keyed operation — Get, Update, Delete, every entry of
// an UpdateBatch — is one modulo: a pure function of the OID, stable for
// the object's lifetime, with no directory to maintain. Value queries
// have no OID to hash; they fan out to every shard (one goroutine per
// shard when cores allow) and merge the per-shard answers, which are
// disjoint sorted runs, into exactly the result a single engine holding
// all the objects would return — enforced by a differential test that
// replays mixed traces against both deployments. Because the paper's
// model navigates forward references (queries chain through them, NIX
// and PX maintenance walk them), an object's references must live in its
// shard: Insert routes a referencing object to the shard owning its
// references, reference-free roots place round-robin or explicitly with
// InsertAt, and references spanning shards are rejected (ErrCrossShard)
// — the co-location contract of partitioned relational stores.
//
// Each shard is a full lifecycle engine with its own store, index set,
// workload recorder and drift tracking, so the Section 5 cost model
// applies per partition: Advise and Reconfigure re-select every shard
// independently, and because reads replicate across the fan-out while
// writes partition, skewed write traffic drives shards to genuinely
// different configurations (see examples/sharded). WorkloadSnapshot
// rolls the per-shard recorders up; Drift reports per-shard, worst-shard
// and traffic-weighted aggregates. Experiment E4 (ixbench -run shard)
// measures the same mixed serving workload over 1/2/4/8 shards at
// 1/2/4/8 workers against the E2 single-engine baseline — every
// deployment serving the identical logical dataset — and writes
// BENCH_shard.json; DESIGN.md §7 records the architecture and the
// measured shape.
//
// # Durability
//
// OpenDurable opens a disk-backed engine in a directory: every Insert,
// Update and Delete appends a CRC-framed record to a write-ahead log and
// commits per the configured policy — SyncAlways (fsync per operation:
// acknowledged means durable), SyncGroup (fsyncs amortized over a
// commit window) or SyncNever — before the operation returns, and store
// pages live behind a checksummed file-backed buffer pool, so a pool
// miss is a real, torn-write-detected disk read. Checkpoints (automatic
// past a WAL-size threshold, plus every configuration swap and Close)
// snapshot the object population and the active configuration via
// atomic renames and truncate the log. Reopening the directory recovers
// — snapshot, then WAL replay (a torn or corrupt tail is truncated,
// never replayed), then index rebuild — so the recovered database holds
// exactly the acknowledged operations, the active configuration
// survives restarts, and the OID sequence continues where it stopped. A
// failed append, fsync or write-back fails the operation that needed
// it and condemns the engine (DurabilityErr); reads keep serving the
// in-memory state. The contract is enforced by a differential crash
// gate: hundreds of randomized kill points (including mid-checkpoint
// and mid-reconfiguration) driven through a fault-injecting file layer,
// each recovered and compared — count, OID sequence, content
// fingerprint, index answers — against a reference store replaying the
// acknowledged prefix. OpenShardedDurable gives every shard its own
// WAL and checkpoints under one directory and recovers shards in
// parallel; per-shard configuration divergence persists. Experiment E5
// (ixbench -run durable) measures fsync-policy throughput, recovery
// time vs WAL length and cold-cache serving, and writes BENCH_wal.json;
// DESIGN.md §8 records the protocol and the crash matrix. See
// examples/durable for a kill-and-recover walkthrough.
//
// # Planning
//
// The paper prices one path expression; real predicates conjoin several
// (age = 30 AND owns.man.name = "Ford"). NewPlanner returns a planner
// over a store; Register binds each path to whatever answers its probes
// — a Database, a ShardedDB or an OpenStatic executor. Eq, Range, And
// and Or build predicate trees; Planner.Query (or Plan + Execute, with
// Explain for the chosen shape) compiles a tree into a physical plan
// that probes indexed conjuncts cheapest-first — ordered by a live
// estimate of each leaf's result cardinality, fed back from every
// executed probe, falling back to the analytic model's uniform-value
// estimate when cold — and narrows the candidate set with a galloping,
// allocation-free sorted-OID intersection. Conjuncts whose path has no
// registered index become residual post-filters: each surviving
// candidate is verified against the store by forward navigation.
// Disjunctions merge through a k-way tournament merge. Executed plans
// record their predicate mix (point/range/residual per path), which
// surfaces in WorkloadSnapshot next to the per-class counters.
//
// Against a ShardedDB the planner composes with summary pruning: each
// shard maintains min/max bounds plus a Bloom filter over its resident
// ending-attribute values, so value probes skip shards that provably
// cannot match — sound because a path instance never spans shards, and
// maintained incrementally on the facade's write path (deletions only
// loosen the summary; Reconfigure re-tightens it). Experiment E6
// (ixbench -run plan) measures both effects — selectivity ordering vs
// the worst fixed order vs naive scanning, and the pruned fan-out on a
// skewed sharded workload — and writes BENCH_plan.json; DESIGN.md §9
// records the design. See examples/planner for an end-to-end program.
//
// # Selection feedback
//
// The recorded workload feeds back into selection — the loop the
// paper's design-time load triplets leave open. SelectMultiWeighted
// and SelectBatchWeighted take a Workload snapshot and re-derive every
// path's query/update frequencies from it before selecting: class
// counters normalize over the fleet-wide evidence total (so paths keep
// their relative traffic through the shared-subpath cost merge),
// recorded range probes move query mass to range pricing, and residual
// predicate leaves — conjuncts served by store navigation for lack of
// an index — enter as root-class query load, so a residual-heavy path
// earns an index on its cost merits and a never-probed path sheds its
// own (an explicit whole-path NONE assignment when NONE is among the
// candidates). A zero-valued snapshot degrades to the unweighted
// selection bit for bit. The engines consume the same derivation:
// Advise and Reconfigure weigh the live snapshot (a sharded facade
// pushes its fleet-level predicate mix down into each shard's advice),
// a durable engine's predicate mix survives Close and reopen via the
// checkpoint manifest, and because advice and drift share one
// derivation the loop reaches a fixed point in one step — re-driving
// the mix an adopted configuration was selected from measures ~zero
// drift and advises no further change. Experiment E9 (ixbench -run
// feedback) measures workload-fed against static selection under a
// skewed recorded mix and writes BENCH_feedback.json; DESIGN.md §12
// records the model.
//
// # Serving over the network
//
// NewNetServer puts any backend with the engine's serving surface — a
// Database, a ShardedDB, an OpenStatic executor — behind a TCP server
// speaking a pipelined binary protocol, and DialNet returns a client
// for it. Frames are length-prefixed and CRC-framed exactly like the
// WAL's records: a corrupt, truncated or oversized frame fails the
// connection cleanly, never the server (fuzz-enforced). Responses carry
// the request id, so a client keeps many calls in flight on one
// connection — Query/Insert/Update/Delete block for one round trip;
// GoQuery and friends return a Call future whose Wait collects later.
//
// The server is where the batch kernels survive the socket boundary:
// per-connection readers decode into pooled request slots and feed
// dispatchers (each connection pinned to one, so its requests are
// served in arrival order); a dispatcher drains whatever has
// concurrently accumulated — the coalescing window, self-sized because
// the drain happens after the previous batch's execution — and serves
// point-query runs with one QueryBatch descent and update runs with one
// UpdateBatch, so on a durable backend group commit amortizes WAL
// fsyncs across connections. A batch's responses are bundled into one
// framed write per connection. The steady-state dispatch path holds a
// fixed per-batch allocation budget (test-enforced), and every request
// is recorded per class into the same workload machinery that drives
// drift detection, so a served engine retunes itself exactly like an
// embedded one. cmd/ixserved is the standalone server (durable or
// in-memory, sharded or single, graceful drain on SIGINT/SIGTERM:
// every request already read is answered, then the engines checkpoint
// and the process exits 0); cmd/ixstress drives read/write mixes over
// many connections. Experiment E7 (ixbench -run net) measures embedded
// vs networked serving at 1/8/64/256 connections on engine-bound and
// wire-bound read mixes and writes BENCH_net.json; DESIGN.md §10
// records the protocol and the measured shape. See examples/netclient.
//
// # Planning over the network
//
// The planner's predicate trees serialize over the same protocol:
// WireEq, WireRange, WireAnd and WireOr build a WirePredicate whose
// leaves name paths by server-registered id (NetServer.RegisterPath) —
// a remote caller needs no schema — and NetClient.Predicate or
// PredicateValues (with GoPredicate/GoPredicateValues futures) execute
// it server-side through the full §Planning machinery: selectivity
// ordering, galloping intersection, residual filters, shard pruning.
// The encoding is canonical (decode-or-error under fuzz, re-encoding
// byte-identical) with depth and node caps enforced at decode, so a
// hostile tree fails its connection, never the process. The dispatcher
// extends coalescing to predicates by dedup: identical trees arriving
// in one window cost one planner descent whose answer fans back to
// every caller, which is why parameterized query pools serve at batch
// rates over the wire. Experiment E8 (ixbench -run netplan) measures
// coalesced vs per-request predicate dispatch vs the embedded planner
// and writes BENCH_netplan.json; DESIGN.md §11 records the encoding
// and the measured dividend.
//
// See README.md for the repository map, the examples/ directory for
// end-to-end programs, and DESIGN.md for the system inventory and the
// paper-versus-measured experiment index.
package ooindex
