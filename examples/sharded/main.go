// Command sharded demonstrates per-shard index selection under a skewed
// workload: a two-shard database whose shards serve the same schema and
// path but very different traffic.
//
// Value queries fan out to every shard, so read load replicates across
// the fleet; writes route to the shard owning the object, so write load
// partitions. Concentrating the update traffic on one shard's objects
// therefore drives the two shards' observed operation mixes — and with
// them the Section 5 selections — apart: the quiet shard's mix stays
// query-dominant and favors retrieval-oriented indexing (the whole-path
// nested inherited index), while the hot shard's update-heavy mix makes
// maintenance cost dominate and favors cheap-to-maintain fine splits.
// One Reconfigure call re-selects every shard independently; afterwards
// the two shards genuinely run different configurations over the same
// path — the per-partition advising that CoPhy's decomposition and
// Meta's AIM argue index automation needs at scale.
//
// Run from the repository root:
//
//	go run ./examples/sharded
package main

import (
	"fmt"
	"log"
	"math/rand"

	ooindex "repro"
)

const (
	nShards   = 2
	pageSize  = 1024
	companies = 40
	vehicles  = 120
	persons   = 200
)

func main() {
	p := ooindex.PaperPath() // Person.owns.man.name
	start := ooindex.Configuration{Assignments: []ooindex.Assignment{
		{A: 1, B: 3, Org: ooindex.NIX},
	}}
	db, err := ooindex.OpenSharded(p, start, pageSize, nShards, ooindex.EngineOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Populate both shards with the same fleet shape: companies named
	// over a small value pool, vehicles made by them, persons owning the
	// vehicles. InsertAt pins each tree's root; references co-locate the
	// rest of the tree automatically.
	rng := rand.New(rand.NewSource(7))
	values := make([]ooindex.Value, 12)
	for i := range values {
		values[i] = ooindex.StrV(fmt.Sprintf("maker-%02d", i))
	}
	byShard := make([][]ooindex.OID, nShards) // vehicle OIDs per shard
	coByShard := make([][]ooindex.OID, nShards)
	for s := 0; s < nShards; s++ {
		for i := 0; i < companies; i++ {
			co, err := db.InsertAt(s, "Company", map[string][]ooindex.Value{
				"name": {values[rng.Intn(len(values))]},
			})
			if err != nil {
				log.Fatal(err)
			}
			coByShard[s] = append(coByShard[s], co)
		}
		for i := 0; i < vehicles; i++ {
			v, err := db.Insert("Vehicle", map[string][]ooindex.Value{
				"man": {ooindex.RefV(coByShard[s][rng.Intn(companies)])},
			})
			if err != nil {
				log.Fatal(err)
			}
			byShard[s] = append(byShard[s], v)
		}
		for i := 0; i < persons; i++ {
			if _, err := db.Insert("Person", map[string][]ooindex.Value{
				"owns": {ooindex.RefV(byShard[s][rng.Intn(vehicles)])},
			}); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("populated %d objects across %d shards\n\n", db.Len(), db.NumShards())

	// The skewed traffic: a modest stream of fleet-wide queries (every
	// shard serves each one), and a heavy stream of re-link updates
	// hitting only shard 1's vehicles (routed to shard 1 alone).
	for i := 0; i < 300; i++ {
		if _, err := db.Query(values[i%len(values)], "Person", false); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 4000; i++ {
		v := byShard[1][rng.Intn(vehicles)]
		co := coByShard[1][rng.Intn(companies)]
		if err := db.Update(v, map[string][]ooindex.Value{"man": {ooindex.RefV(co)}}); err != nil {
			log.Fatal(err)
		}
	}

	for s, w := range db.WorkloadSnapshots() {
		var q, u uint64
		for _, c := range w.Classes {
			q += c.Queries
			u += c.Updates + c.Inserts + c.Deletes
		}
		fmt.Printf("shard %d observed mix: %5d queries, %5d writes\n", s, q, u)
	}
	dv := db.Drift()
	fmt.Printf("drift per shard %v (max %.2f, traffic-weighted %.2f)\n\n", dv.PerShard, dv.Max, dv.Weighted)

	// One call, one independent re-selection per shard.
	reports, err := db.Reconfigure()
	if err != nil {
		log.Fatal(err)
	}
	for s, rep := range reports {
		fmt.Printf("shard %d: %v -> %v (changed=%v, reused %d structures)\n",
			s, rep.From, rep.To, rep.Changed, rep.Reused)
	}
	fmt.Println()
	for s, cfg := range db.Configs() {
		fmt.Printf("shard %d now serves %v\n", s, cfg)
	}
	if cfgs := db.Configs(); !cfgs[0].Equal(cfgs[1]) {
		fmt.Println("\nthe shards diverged: same schema, same path, different optimal indexes")
	} else {
		fmt.Println("\n(the shards agreed this time; raise the update skew to split them)")
	}
}
