// Workloadtuning shows how the optimal index configuration shifts with
// the workload mix: sweeping the query share λ from pure updates (λ=0) to
// pure queries (λ=1) on the Figure 7 statistics, the optimum moves from
// cheap-to-maintain fine splits to the whole-path nested inherited index —
// the trade-off at the heart of the paper.
package main

import (
	"fmt"
	"log"

	ooindex "repro"
)

func main() {
	fmt.Println("Optimal configuration vs query share λ for Person.owns.man.divs.name")
	fmt.Println()
	fmt.Printf("%-8s  %-34s  %10s  %12s  %12s\n", "λ", "optimal configuration", "cost", "whole NIX", "whole MX")

	for _, lam := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1} {
		ps := scaledWorkload(lam)
		res, m, err := ooindex.Select(ps, nil)
		if err != nil {
			log.Fatal(err)
		}
		nix, _ := m.Cell(1, ps.Len(), ooindex.NIX)
		mx, _ := m.Cell(1, ps.Len(), ooindex.MX)
		fmt.Printf("%-8.2f  %-34s  %10.2f  %12.2f  %12.2f\n", lam, res.Best.String(), res.Best.Cost, nix, mx)
	}

	fmt.Println()
	fmt.Println("With the no-index extension column (Section 6), a pure-update workload")
	fmt.Println("chooses to index nothing at all:")
	ps := scaledWorkload(0)
	res, _, err := ooindex.Select(ps, ooindex.OrganizationsWithNoIndex)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  λ=0.00: %v (cost %.2f)\n", res.Best, res.Best.Cost)
}

// scaledWorkload returns the Figure 7 statistics with query frequencies
// scaled by lam and update frequencies by 1-lam.
func scaledWorkload(lam float64) *ooindex.PathStats {
	ps := ooindex.Figure7Stats()
	for l := 1; l <= ps.Len(); l++ {
		ls := ps.Level(l)
		for x := range ls.Loads {
			base := ls.Loads[x]
			ls.Loads[x] = ooindex.Load{
				Alpha: base.Alpha * lam,
				Beta:  base.Beta * (1 - lam),
				Gamma: base.Gamma * (1 - lam),
			}
		}
	}
	return ps
}
