// Command durable demonstrates crash recovery: a disk-backed database is
// killed mid-workload — the process's simulated death leaves a torn
// write-ahead log tail — and a reopen recovers exactly the acknowledged
// operations.
//
// The durable engine write-ahead logs every Insert, Update and Delete
// and fsyncs per the commit policy before acknowledging; checkpoints
// (snapshot + manifest + WAL truncation, each atomically renamed into
// place) bound the log. On reopen, recovery loads the last checkpoint,
// replays the WAL over it — truncating a torn or corrupt tail rather
// than replaying it — and rebuilds the active configuration's indexes
// from the recovered objects.
//
// This program plays both the victim and the survivor: it populates a
// database, records what was acknowledged, simulates a kill by simply
// abandoning the engine (no Close, so no shutdown checkpoint — the WAL
// alone carries the tail of the state), corrupts the log's final bytes
// the way a torn sector would, and then reopens. The recovered database
// must hold every acknowledged-and-synced operation and nothing else.
//
// Run from the repository root:
//
//	go run ./examples/durable
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	ooindex "repro"
)

const pageSize = 1024

func main() {
	dir, err := os.MkdirTemp("", "ooindex-durable-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	p := ooindex.PaperPath() // Person.owns.man.name
	cfg := ooindex.Configuration{Assignments: []ooindex.Assignment{
		{A: 1, B: 3, Org: ooindex.NIX},
	}}

	// Phase 1: the victim. SyncAlways means every acknowledged operation
	// has been fsynced — the strongest contract, and the one that makes
	// "acknowledged" and "recoverable" the same set.
	db, err := ooindex.OpenDurable(dir, p, cfg, pageSize, ooindex.DurableOptions{
		Policy: ooindex.SyncAlways,
	})
	if err != nil {
		log.Fatal(err)
	}
	values := []ooindex.Value{ooindex.StrV("ford"), ooindex.StrV("volvo"), ooindex.StrV("fiat")}
	var owners int
	for i := 0; i < 30; i++ {
		co, err := db.Insert("Company", map[string][]ooindex.Value{"name": {values[i%len(values)]}})
		if err != nil {
			log.Fatal(err)
		}
		car, err := db.Insert("Vehicle", map[string][]ooindex.Value{"man": {ooindex.RefV(co)}})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := db.Insert("Person", map[string][]ooindex.Value{"owns": {ooindex.RefV(car)}}); err != nil {
			log.Fatal(err)
		}
		owners++
	}
	acked := db.Store().Len()
	fmt.Printf("victim:    %d objects acknowledged (%d owners), WAL %d bytes\n",
		acked, owners, db.WALSize())

	// The kill: no Close, no checkpoint. And worse — the last sector of
	// the log is torn, as a power cut mid-write would leave it.
	walPath := filepath.Join(dir, "wal.log")
	raw, err := os.ReadFile(walPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(walPath, raw[:len(raw)-3], 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kill:      process abandoned, WAL tail torn (%d of %d bytes survive)\n",
		len(raw)-3, len(raw))

	// Phase 2: the survivor. Recovery replays the intact prefix and
	// truncates the torn record — the torn record's operation was never
	// acknowledged as synced past that point, so losing it keeps the
	// contract: everything acknowledged-and-fsynced is here.
	db2, err := ooindex.OpenDurable(dir, p, cfg, pageSize, ooindex.DurableOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer db2.Close()
	fmt.Printf("recovery:  %d WAL records replayed, %d objects recovered\n",
		db2.Replayed(), db2.Store().Len())
	if got := db2.Store().Len(); got != acked-1 {
		log.Fatalf("recovered %d objects, want %d (all acknowledged minus the torn tail record)", got, acked-1)
	}

	// The recovered indexes answer queries over the recovered state.
	for _, v := range values {
		hits, err := db2.Query(v, "Person", true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query:     owners of a %s-made vehicle: %d\n", v.Str, len(hits))
	}

	// And the survivor keeps writing: the OID sequence continues past
	// everything recovered, and a clean Close checkpoints so the next open
	// replays nothing.
	if _, err := db2.Insert("Company", map[string][]ooindex.Value{"name": {values[0]}}); err != nil {
		log.Fatal(err)
	}
	if err := db2.Close(); err != nil {
		log.Fatal(err)
	}
	db3, err := ooindex.OpenDurable(dir, p, cfg, pageSize, ooindex.DurableOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer db3.Close()
	fmt.Printf("clean:     after checkpointed close, reopen replays %d records (%d objects)\n",
		db3.Replayed(), db3.Store().Len())
}
