// Netclient: the serving tier end to end in one process. A generated
// database goes behind the TCP server, a client dials it, and the same
// operations the embedded engine answers — point and range queries,
// inserts, updates, deletes, predicate trees — cross the wire instead,
// first one round trip at a time and then pipelined, where the server
// coalesces the concurrently-arriving requests into one batch-kernel
// descent (and identical predicate trees into one shared planner
// descent) and the counters show it happening.
package main

import (
	"fmt"
	"log"

	ooindex "repro"
)

func main() {
	// A small physical database from the Figure 7 statistics, indexed
	// with a whole-path nested index, exactly as the embedded examples
	// build it.
	g, err := ooindex.Generate(ooindex.Figure7Stats(), 0.01, 42)
	if err != nil {
		log.Fatal(err)
	}
	cfg := ooindex.Configuration{Assignments: []ooindex.Assignment{
		{A: 1, B: g.Path.Len(), Org: ooindex.NIX},
	}}
	db, err := ooindex.Open(g.Store, g.Path, cfg, 1024)
	if err != nil {
		log.Fatal(err)
	}

	// Serve it. Port 0 picks a free port; ClassOf lets the server record
	// per-class workload statistics for the self-tuning machinery.
	srv := ooindex.NewNetServer(db, ooindex.NetServerOptions{
		Path: g.Path,
		ClassOf: func(oid ooindex.OID) (string, bool) {
			o, ok := g.Store.Peek(oid)
			if !ok {
				return "", false
			}
			return o.Class, true
		},
	})
	// Registering the served path as wire id 1 makes it addressable by
	// predicate trees; the engine's own maintained indexes answer the
	// probes.
	if err := srv.RegisterPath(1, g.Path, db, nil); err != nil {
		log.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving %s on %s\n\n", g.Path, addr)

	c, err := ooindex.DialNet(addr.String())
	if err != nil {
		log.Fatal(err)
	}

	// Synchronous calls: one request per round trip, same results the
	// embedded engine would give.
	v := g.EndValues[3]
	persons, err := c.Query(v, "Person", false)
	if err != nil {
		log.Fatal(err)
	}
	divisions, err := c.Query(v, "Division", false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %v: %d persons, %d divisions\n", v, len(persons), len(divisions))

	// The write path: insert, update, query back, delete. The minted OID
	// comes back over the wire.
	oid, err := c.Insert("Division", map[string][]ooindex.Value{
		"name": {ooindex.StrV("networking")},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := c.Update(oid, map[string][]ooindex.Value{
		"name": {ooindex.StrV("serving")},
	}); err != nil {
		log.Fatal(err)
	}
	back, err := c.Query(ooindex.StrV("serving"), "Division", false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("insert/update round trip: minted OID %d, queried back %v\n", oid, back)
	if err := c.Delete(oid); err != nil {
		log.Fatal(err)
	}

	// A server-side error arrives as a RemoteError and leaves the
	// connection healthy.
	if err := c.Delete(oid); err != nil {
		fmt.Printf("double delete: %v\n\n", err)
	}

	// Pipelining: fire a window of requests without waiting, then
	// collect. The calls overlap in flight, and on the server the
	// dispatcher coalesces whatever has arrived into one QueryBatch
	// descent — one index traversal for the window, not one per request.
	calls := make([]*ooindex.NetCall, 32)
	for i := range calls {
		calls[i] = c.GoQuery(g.EndValues[i%len(g.EndValues)], "Person", false)
	}
	hits := 0
	for _, call := range calls {
		oids, err := call.Wait()
		if err != nil {
			log.Fatal(err)
		}
		hits += len(oids)
	}
	reqs, batches, coalesced := srv.CoalesceStats()
	fmt.Printf("pipelined %d queries -> %d owners\n", len(calls), hits)
	fmt.Printf("server saw %d requests in %d batches (%d coalesced into a shared window)\n\n",
		reqs, batches, coalesced)

	// A predicate tree, planned and executed server-side: leaves name
	// the registered path id, so the client needs no schema. Identical
	// trees pipelined into one window share a single planner descent —
	// the predicate counters show requests vs descents.
	pred := ooindex.WireOr(
		ooindex.WireEq(1, g.EndValues[3]),
		ooindex.WireEq(1, g.EndValues[5]),
	)
	pcalls := make([]*ooindex.NetCall, 16)
	for i := range pcalls {
		pcalls[i] = c.GoPredicate(&pred, "Person", false)
	}
	matched := 0
	for _, call := range pcalls {
		oids, err := call.Wait()
		if err != nil {
			log.Fatal(err)
		}
		matched = len(oids)
	}
	preqs, descents := srv.PredicateStats()
	fmt.Printf("pipelined %d identical predicate trees -> %d matches each\n", len(pcalls), matched)
	fmt.Printf("server planned %d predicate requests in %d shared descents\n", preqs, descents)

	if err := c.Close(); err != nil {
		log.Fatal(err)
	}
	if err := srv.Shutdown(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nserver drained and shut down")
}
