// Multipath demonstrates the Section 6 "further research" extension:
// selecting index configurations for several paths at once. Two paths of
// the paper's schema share the Company.divs.name tail; when both optima
// index that subpath with the same organization, one physical structure
// serves both and its maintenance cost is paid once.
package main

import (
	"fmt"
	"log"

	ooindex "repro"
)

func main() {
	s := ooindex.PaperSchema()

	// Path A: the Example 5.1 path (persons → ... → division name).
	psA := ooindex.Figure7Stats()

	// Path B: vehicles → manufacturer → divisions → name, e.g. "retrieve
	// the vehicles made by a company with a division named V".
	pB, err := ooindex.NewPath(s, "Vehicle", "man", "divs", "name")
	if err != nil {
		log.Fatal(err)
	}
	psB := ooindex.NewPathStats(pB, ooindex.PaperParams())
	psB.MustSet(1, ooindex.ClassStats{Class: "Vehicle", N: 10000, D: 5000, NIN: 3}, ooindex.Load{Alpha: 0.3, Beta: 0.2, Gamma: 0.3})
	psB.MustSet(1, ooindex.ClassStats{Class: "Bus", N: 5000, D: 2500, NIN: 2}, ooindex.Load{Alpha: 0.05, Beta: 0.05, Gamma: 0.1})
	psB.MustSet(1, ooindex.ClassStats{Class: "Truck", N: 5000, D: 2500, NIN: 2}, ooindex.Load{Beta: 0.1})
	psB.MustSet(2, ooindex.ClassStats{Class: "Company", N: 1000, D: 1000, NIN: 4}, ooindex.Load{Alpha: 0.1, Beta: 0.1, Gamma: 0.1})
	psB.MustSet(3, ooindex.ClassStats{Class: "Division", N: 1000, D: 1000, NIN: 1}, ooindex.Load{Alpha: 0.2, Beta: 0.2, Gamma: 0.1})

	plan, err := ooindex.SelectMulti([]*ooindex.PathStats{psA, psB}, nil)
	if err != nil {
		log.Fatal(err)
	}

	paths := []*ooindex.PathStats{psA, psB}
	for i, cfg := range plan.Configs {
		fmt.Printf("Path %d: %s\n", i+1, paths[i].Path)
		for _, a := range cfg.Assignments {
			sp, _ := paths[i].Path.SubPath(a.A, a.B)
			fmt.Printf("  %-24s %s\n", sp, a.Org)
		}
	}
	fmt.Println()
	if len(plan.SharedSubpaths) > 0 {
		fmt.Println("Shared physical structures (maintained once):")
		for _, sp := range plan.SharedSubpaths {
			fmt.Printf("  %s\n", sp)
		}
	} else {
		fmt.Println("No structurally identical subpaths selected; nothing shared.")
	}
	fmt.Printf("\nCost without sharing: %.2f\n", plan.UnsharedCost)
	fmt.Printf("Cost with sharing:    %.2f (%.1f%% saved)\n",
		plan.TotalCost, 100*(plan.UnsharedCost-plan.TotalCost)/plan.UnsharedCost)
}
