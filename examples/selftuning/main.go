// Selftuning demonstrates the lifecycle engine closing the paper's loop
// without an administrator: the database observes its own workload,
// detects that the traffic has drifted away from what the active index
// configuration was selected for, re-runs the Section 5 selection on
// refreshed statistics in the background, and swaps in the new optimum —
// rebuilding only the subpath indexes that actually changed, while
// queries keep flowing.
package main

import (
	"fmt"
	"log"

	ooindex "repro"
)

func main() {
	// A synthetic database shaped like Figure 7, plus the workload the
	// administrator *assumes*: reporting traffic, almost all queries.
	design := ooindex.Figure7Stats()
	g, err := ooindex.Generate(design, 0.01, 7)
	if err != nil {
		log.Fatal(err)
	}
	assumed, err := ooindex.CollectStats(g.Store, g.Path, ooindex.PaperParams())
	if err != nil {
		log.Fatal(err)
	}
	// Reporting: queries arrive against Person, with a trickle of
	// Division churn.
	mustSetLoad(assumed, 1, "Person", ooindex.Load{Alpha: 1})
	mustSetLoad(assumed, 4, "Division", ooindex.Load{Beta: 0.02, Gamma: 0.02})
	initial, _, err := ooindex.Select(assumed, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Database: %d objects over %s\n", g.Store.Len(), g.Path)
	fmt.Printf("Assumed workload: query-heavy -> initial configuration %v\n\n", initial.Best)

	// Open the engine with automatic tuning: check drift every 64
	// operations, reconfigure beyond total-variation 0.3.
	db, err := ooindex.OpenWithOptions(g.Store, g.Path, initial.Best, ooindex.PaperParams().PageSize, ooindex.EngineOptions{
		Params:         ooindex.PaperParams(),
		Assumed:        assumed,
		DriftThreshold: 0.3,
		MinOps:         64,
		CheckEvery:     64,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: the traffic matches the assumption. No drift, no swap.
	for i := 0; i < 300; i++ {
		if _, err := db.Query(g.EndValues[i%len(g.EndValues)], "Person", false); err != nil {
			log.Fatal(err)
		}
	}
	db.Quiesce()
	fmt.Printf("Phase 1 (reporting): %d ops served, drift %.2f, swaps %d\n",
		db.WorkloadSnapshot().Total, db.Drift(), db.Swaps())

	// Phase 2: the application changes — ingest traffic, all updates.
	// The recorder sees the flip, drift crosses the threshold, and the
	// background controller re-selects and swaps.
	for i := 0; i < 300; i++ {
		oid, err := db.Insert("Division", map[string][]ooindex.Value{
			"name": {g.EndValues[i%len(g.EndValues)]},
		})
		if err != nil {
			log.Fatal(err)
		}
		if i%2 == 0 {
			if err := db.Delete(oid); err != nil {
				log.Fatal(err)
			}
		}
	}
	db.Quiesce()
	fmt.Printf("Phase 2 (ingest):    drift detected, swaps %d\n", db.Swaps())
	if at, ok := db.LastAutoTune(); ok && at.Err == nil {
		rep := at.Report
		fmt.Printf("  reconfigured %v\n            -> %v\n", rep.From, rep.To)
		fmt.Printf("  at drift %.2f; %d structure(s) reused, %d rebuilt\n", rep.Drift, rep.Reused, rep.Built)
	}

	// The engine is now tuned to what the system actually serves: a
	// fresh advice confirms the active configuration.
	adv, err := db.Advise()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPost-tune advice: configuration change recommended: %v\n", adv.Changed)
	fmt.Printf("Active configuration: %v\n", db.Config())
}

func mustSetLoad(ps *ooindex.PathStats, level int, class string, load ooindex.Load) {
	if err := ps.SetLoad(level, class, load); err != nil {
		log.Fatal(err)
	}
}
