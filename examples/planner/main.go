// Planner demonstrates the conjunctive-predicate planner: several
// indexed paths over one store, a predicate conjoining them, and the
// planner choosing the probe order from live selectivity — plus a
// residual conjunct on an unindexed path, verified by navigation.
package main

import (
	"fmt"
	"log"
	"math/rand"

	ooindex "repro"
)

func main() {
	s := ooindex.PaperSchema()
	st, err := ooindex.NewStore(s, 4096)
	if err != nil {
		log.Fatal(err)
	}

	// A small registry: 40 companies, 400 vehicles, 1200 persons.
	// Company names are selective (~1/40); ages are not (~1/8).
	rng := rand.New(rand.NewSource(7))
	colors := []string{"red", "blue", "green", "white"}
	companies := make([]ooindex.OID, 40)
	for i := range companies {
		companies[i], err = st.Insert("Company", map[string][]ooindex.Value{
			"name": {ooindex.StrV(fmt.Sprintf("maker-%02d", i))},
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	vehicles := make([]ooindex.OID, 400)
	for i := range vehicles {
		vehicles[i], err = st.Insert("Vehicle", map[string][]ooindex.Value{
			"man":   {ooindex.RefV(companies[rng.Intn(len(companies))])},
			"color": {ooindex.StrV(colors[rng.Intn(len(colors))])},
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 1200; i++ {
		_, err = st.Insert("Person", map[string][]ooindex.Value{
			"age":  {ooindex.IntV(int64(25 + rng.Intn(8)))},
			"owns": {ooindex.RefV(vehicles[rng.Intn(len(vehicles))])},
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	// Two indexed paths — the Example 2.1 path under whole-path NIX and
	// the person's age under MX — each behind its own engine.
	pName := ooindex.PaperPath() // Person.owns.man.name
	pAge, err := ooindex.NewPath(s, "Person", "age")
	if err != nil {
		log.Fatal(err)
	}
	nameCfg := ooindex.Configuration{Assignments: []ooindex.Assignment{{A: 1, B: pName.Len(), Org: ooindex.NIX}}}
	ageCfg := ooindex.Configuration{Assignments: []ooindex.Assignment{{A: 1, B: 1, Org: ooindex.MX}}}
	nameDB, err := ooindex.Open(st, pName, nameCfg, 4096)
	if err != nil {
		log.Fatal(err)
	}
	ageDB, err := ooindex.Open(st, pAge, ageCfg, 4096)
	if err != nil {
		log.Fatal(err)
	}

	// A third path stays unregistered: the planner verifies it per
	// candidate by navigation (a residual filter).
	pColor, err := ooindex.NewPath(s, "Person", "owns", "color")
	if err != nil {
		log.Fatal(err)
	}

	pl := ooindex.NewPlanner(st)
	if err := pl.Register(pName, nameDB, nil); err != nil {
		log.Fatal(err)
	}
	if err := pl.Register(pAge, ageDB, nil); err != nil {
		log.Fatal(err)
	}

	// "Persons aged under 30 who own a red vehicle made by maker-18" —
	// declared with the unselective age conjunct first, on purpose.
	pred := ooindex.And(
		ooindex.Range(pAge, ooindex.IntV(25), ooindex.IntV(30)),
		ooindex.Eq(pName, ooindex.StrV("maker-18")),
		ooindex.Eq(pColor, ooindex.StrV("red")),
	)

	// Warm the planner's cardinality estimates with a few probes, then
	// plan: the selective name conjunct moves to the front and the
	// unindexed color conjunct becomes a residual filter.
	for i := 0; i < 4; i++ {
		if _, err := pl.Query(pred, "Person", false); err != nil {
			log.Fatal(err)
		}
	}
	qp, err := pl.Plan(pred, "Person", false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Plan:")
	fmt.Println(qp.Explain())
	oids, err := qp.Execute()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Matches: %d persons\n\n", len(oids))

	// The same answer, the hard way: each conjunct's full set by naive
	// navigation, every match verified a member of all three.
	ages, err := ooindex.NaiveQueryRange(st, pAge, ooindex.IntV(25), ooindex.IntV(30), "Person", false)
	if err != nil {
		log.Fatal(err)
	}
	names, err := ooindex.NaiveQuery(st, pName, ooindex.StrV("maker-18"), "Person", false)
	if err != nil {
		log.Fatal(err)
	}
	reds, err := ooindex.NaiveQuery(st, pColor, ooindex.StrV("red"), "Person", false)
	if err != nil {
		log.Fatal(err)
	}
	check := 0
	for _, oid := range oids {
		for _, set := range [][]ooindex.OID{ages, names, reds} {
			for _, o := range set {
				if o == oid {
					check++
					break
				}
			}
		}
	}
	fmt.Printf("Cross-check: %d/%d conjunct memberships confirmed by navigation\n",
		check, 3*len(oids))

	// The executed plans also reported their predicate mix — the shapes a
	// re-selection pass can weigh against the assumed workload.
	for _, pr := range pl.Predicates() {
		fmt.Printf("Recorded mix: %-28s eq=%d range=%d residual=%d\n", pr.Path, pr.Eq, pr.Range, pr.Residual)
	}
}
