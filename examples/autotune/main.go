// Autotune closes the administrator's loop the paper's algorithm was
// designed for: measure a live database, declare the expected workload,
// select the optimal index configuration, build it, and verify it against
// unindexed evaluation — then change the workload and watch the
// recommended configuration change.
package main

import (
	"fmt"
	"log"

	ooindex "repro"
)

func main() {
	// A live database: here materialized synthetically, but CollectStats
	// only sees the store, exactly as it would a hand-populated one.
	design := ooindex.Figure7Stats()
	g, err := ooindex.Generate(design, 0.01, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Database: %d objects across %d classes\n\n", g.Store.Len(), len(g.ByClass))

	// 1. Measure: derive per-class statistics from the store itself.
	ps, err := ooindex.CollectStats(g.Store, g.Path, ooindex.PaperParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Measured statistics (per level):")
	for l := 1; l <= ps.Len(); l++ {
		for _, c := range ps.Level(l).Classes {
			fmt.Printf("  L%d %-8s n=%6.0f  d=%6.0f  nin=%.2f\n", l, c.Class, c.N, c.D, c.NIN)
		}
	}

	// 2. Declare the expected workload and select.
	for _, scenario := range []struct {
		name  string
		query float64
		upd   float64
	}{
		{"reporting (query-heavy)", 1.0, 0.05},
		{"ingest (update-heavy)", 0.05, 1.0},
	} {
		for l := 1; l <= ps.Len(); l++ {
			for x := range ps.Level(l).Loads {
				ps.Level(l).Loads[x] = ooindex.Load{
					Alpha: scenario.query,
					Beta:  scenario.upd / 2,
					Gamma: scenario.upd / 2,
				}
			}
		}
		res, _, err := ooindex.Select(ps, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nScenario %q → %v (cost %.2f)\n", scenario.name, res.Best, res.Best.Cost)

		// 3. Build the recommended configuration and spot-check it.
		db, err := ooindex.Open(g.Store, g.Path, res.Best, ooindex.PaperParams().PageSize)
		if err != nil {
			log.Fatal(err)
		}
		v := g.EndValues[0]
		indexed, err := db.Query(v, "Person", false)
		if err != nil {
			log.Fatal(err)
		}
		naive, err := ooindex.NaiveQuery(g.Store, g.Path, v, "Person", false)
		if err != nil {
			log.Fatal(err)
		}
		if len(indexed) != len(naive) {
			log.Fatalf("verification failed: %d vs %d matches", len(indexed), len(naive))
		}
		fmt.Printf("  verified: %d matches for %v under both evaluation strategies\n", len(indexed), v)
	}
}
