// Quickstart: select the optimal index configuration for the paper's
// Example 5.1 path with three calls — statistics in, configuration out.
package main

import (
	"fmt"
	"log"

	ooindex "repro"
)

func main() {
	// The Figure 7 statistics for Person.owns.man.divs.name: per-class
	// cardinalities, distinct values, fan-outs and the workload triplets.
	ps := ooindex.Figure7Stats()

	// Run the selection algorithm: cost matrix, per-subpath minima, and
	// branch-and-bound over all recombinations.
	res, matrix, err := ooindex.Select(ps, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Path: %s\n\n", ps.Path)
	fmt.Println("Optimal index configuration:")
	for _, a := range res.Best.Assignments {
		sp, _ := ps.Path.SubPath(a.A, a.B)
		cost, _ := matrix.Cell(a.A, a.B, a.Org)
		fmt.Printf("  index %-22s with %-4s (cost %6.2f page accesses)\n", sp, a.Org, cost)
	}
	fmt.Printf("\nTotal processing cost: %.2f page accesses per workload unit\n", res.Best.Cost)

	// Compare against indexing the whole path with a single organization.
	org, whole := matrix.MinCost(1, ps.Len())
	fmt.Printf("Best whole-path index:  %s at %.2f (splitting saves %.0f%%)\n",
		org, whole, 100*(whole-res.Best.Cost)/whole)
	fmt.Printf("Search: evaluated %d of %d configurations (pruned %d prefixes)\n",
		res.Stats.Evaluated, res.Stats.TotalConfigurations, res.Stats.Pruned)
}
