// Vehicledb materializes the paper's vehicle-registry scenario end to end:
// it generates a physical database matching the Figure 7 statistics,
// builds the working index structures of the analytically selected
// configuration, and compares measured page accesses of indexed versus
// naive query evaluation — then exercises maintenance (the insert/delete
// path including the Definition 4.2 boundary case).
package main

import (
	"fmt"
	"log"

	ooindex "repro"
)

func main() {
	ps := ooindex.Figure7Stats()

	// 1. Analytic selection.
	res, _, err := ooindex.Select(ps, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Selected configuration for %s: %v (cost %.2f)\n\n", ps.Path, res.Best, res.Best.Cost)

	// 2. Materialize a database at 1/100 scale: 2,000 persons, 200
	// vehicles, 10 companies, 10 divisions.
	g, err := ooindex.Generate(ps, 0.01, 1994)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Generated %d objects (%d persons, %d vehicles+buses+trucks, %d companies)\n",
		g.Store.Len(), g.Store.ClassCount("Person"),
		g.Store.ClassCount("Vehicle")+g.Store.ClassCount("Bus")+g.Store.ClassCount("Truck"),
		g.Store.ClassCount("Company"))

	// 3. Build the physical indexes of the selected configuration.
	db, err := ooindex.Open(g.Store, g.Path, res.Best, ps.Params.PageSize)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Query: "persons owning a vehicle whose manufacturer has a
	// division named V" — indexed versus naive navigation.
	value := g.EndValues[0]
	db.ResetStats()
	indexed, err := db.Query(value, "Person", false)
	if err != nil {
		log.Fatal(err)
	}
	indexedAccesses := db.IndexStats().Accesses()

	g.Store.Pager().ResetStats()
	naive, err := ooindex.NaiveQuery(g.Store, g.Path, value, "Person", false)
	if err != nil {
		log.Fatal(err)
	}
	naiveAccesses := g.Store.Pager().Stats().Accesses()

	fmt.Printf("\nQuery A_n = %v with respect to Person:\n", value)
	fmt.Printf("  indexed: %4d matches in %6d page accesses\n", len(indexed), indexedAccesses)
	fmt.Printf("  naive:   %4d matches in %6d page accesses (%.0fx more)\n",
		len(naive), naiveAccesses, float64(naiveAccesses)/float64(max(indexedAccesses, 1)))
	if len(indexed) != len(naive) {
		log.Fatalf("result mismatch: indexed %d vs naive %d", len(indexed), len(naive))
	}

	// 5. Maintenance: insert a new ownership chain, query it, delete a
	// company (the boundary case: Company starts the second subpath, so
	// its OID is a key of the first subpath's index).
	div, err := db.Insert("Division", map[string][]ooindex.Value{"name": {ooindex.StrV("new-division")}})
	if err != nil {
		log.Fatal(err)
	}
	comp, err := db.Insert("Company", map[string][]ooindex.Value{"divs": {ooindex.RefV(div)}})
	if err != nil {
		log.Fatal(err)
	}
	bus, err := db.Insert("Bus", map[string][]ooindex.Value{"man": {ooindex.RefV(comp)}})
	if err != nil {
		log.Fatal(err)
	}
	person, err := db.Insert("Person", map[string][]ooindex.Value{"owns": {ooindex.RefV(bus)}})
	if err != nil {
		log.Fatal(err)
	}
	got, err := db.Query(ooindex.StrV("new-division"), "Person", false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAfter inserting a Division←Company←Bus←Person chain, the query finds person %v: %v\n",
		person, got)

	victim := g.ByClass["Company"][0]
	if err := db.Delete(victim); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Deleted company %d — its OID key was removed from the head subpath's index (Definition 4.2)\n", victim)

	// Consistency check after maintenance.
	check, err := db.Query(value, "Person", false)
	if err != nil {
		log.Fatal(err)
	}
	naive2, err := ooindex.NaiveQuery(g.Store, g.Path, value, "Person", false)
	if err != nil {
		log.Fatal(err)
	}
	if len(check) != len(naive2) {
		log.Fatalf("post-maintenance mismatch: %d vs %d", len(check), len(naive2))
	}
	fmt.Println("Post-maintenance consistency check passed: indexed and naive results agree.")
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
