package ooindex

import (
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"
)

func TestSelectFigure7(t *testing.T) {
	ps := Figure7Stats()
	res, m, err := Select(ps, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Degree() != 2 {
		t.Fatalf("degree = %d: %v", res.Best.Degree(), res.Best)
	}
	if res.Best.Assignments[0].Org != NIX || res.Best.Assignments[1].Org != MX {
		t.Errorf("orgs = %v, want NIX then MX", res.Best)
	}
	if m == nil {
		t.Fatal("nil matrix")
	}
	v, err := SubpathCost(ps, 1, 2, NIX)
	if err != nil {
		t.Fatal(err)
	}
	cell, ok := m.Cell(1, 2, NIX)
	if !ok || math.Abs(v-cell) > 1e-9 {
		t.Errorf("SubpathCost = %g, matrix cell = %g", v, cell)
	}
}

func TestSelectWithNoIndexColumn(t *testing.T) {
	// With the NONE extension column, the optimum can only improve or stay
	// equal (the search space grows).
	ps := Figure7Stats()
	base, _, err := Select(ps, Organizations)
	if err != nil {
		t.Fatal(err)
	}
	ext, _, err := Select(ps, OrganizationsWithNoIndex)
	if err != nil {
		t.Fatal(err)
	}
	if ext.Best.Cost > base.Best.Cost+1e-9 {
		t.Errorf("NONE column made the optimum worse: %g > %g", ext.Best.Cost, base.Best.Cost)
	}
}

func TestNoIndexWinsOnPureUpdateWorkload(t *testing.T) {
	// With zero queries, not indexing costs nothing; the NONE column must
	// take over the whole path.
	ps := Figure7Stats()
	for l := 1; l <= ps.Len(); l++ {
		ls := ps.Level(l)
		for x := range ls.Loads {
			ls.Loads[x].Alpha = 0
		}
	}
	res, _, err := Select(ps, OrganizationsWithNoIndex)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Cost != 0 {
		t.Errorf("pure-update NONE cost = %g, want 0", res.Best.Cost)
	}
	for _, a := range res.Best.Assignments {
		if a.Org != NoIndex {
			t.Errorf("assignment %v, want NoIndex everywhere", a)
		}
	}
}

func TestEndToEndWorkingDatabase(t *testing.T) {
	// Select a configuration analytically, build it physically, and check
	// a query end to end.
	ps := Figure7Stats()
	res, _, err := Select(ps, nil)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Generate(ps, 0.002, 5) // 400 persons, tiny but structured
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(g.Store, g.Path, res.Best, ps.Params.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	v := g.EndValues[0]
	want, err := NaiveQuery(g.Store, g.Path, v, "Person", false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := db.Query(v, "Person", false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Query = %v, want %v", got, want)
	}
}

func TestCustomSchemaRoundTrip(t *testing.T) {
	s := NewSchema()
	s.MustAddClass(&Class{Name: "Order", Attrs: []Attribute{
		{Name: "item", Kind: Ref, Domain: "Product"},
	}})
	s.MustAddClass(&Class{Name: "Product", Attrs: []Attribute{
		{Name: "vendor", Kind: Atomic, Domain: "string"},
	}})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	p, err := NewPath(s, "Order", "item", "vendor")
	if err != nil {
		t.Fatal(err)
	}
	ps := NewPathStats(p, DefaultParams())
	ps.MustSet(1, ClassStats{Class: "Order", N: 10000, D: 2000, NIN: 1}, Load{Alpha: 0.5, Beta: 0.2, Gamma: 0.2})
	ps.MustSet(2, ClassStats{Class: "Product", N: 2000, D: 500, NIN: 1}, Load{Alpha: 0.1, Beta: 0.05, Gamma: 0.05})
	res, _, err := Select(ps, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Best.Validate(2); err != nil {
		t.Errorf("invalid configuration: %v", err)
	}
	if res.Best.Cost <= 0 {
		t.Errorf("cost = %g", res.Best.Cost)
	}
}

func TestSelectMulti(t *testing.T) {
	// Two paths sharing the Company.divs.name tail: the optimal configs
	// both index it, and the plan shares the structure.
	psA := Figure7Stats() // Person.owns.man.divs.name
	s := PaperSchema()
	pB, err := NewPath(s, "Vehicle", "man", "divs", "name")
	if err != nil {
		t.Fatal(err)
	}
	psB := NewPathStats(pB, PaperParams())
	psB.MustSet(1, ClassStats{Class: "Vehicle", N: 10000, D: 5000, NIN: 3}, Load{Alpha: 0.3, Gamma: 0.05})
	psB.MustSet(1, ClassStats{Class: "Bus", N: 5000, D: 2500, NIN: 2}, Load{Alpha: 0.05, Beta: 0.05, Gamma: 0.1})
	psB.MustSet(1, ClassStats{Class: "Truck", N: 5000, D: 2500, NIN: 2}, Load{Beta: 0.1})
	psB.MustSet(2, ClassStats{Class: "Company", N: 1000, D: 1000, NIN: 4}, Load{Alpha: 0.1, Beta: 0.1, Gamma: 0.1})
	psB.MustSet(3, ClassStats{Class: "Division", N: 1000, D: 1000, NIN: 1}, Load{Alpha: 0.2, Beta: 0.2, Gamma: 0.1})

	plan, err := SelectMulti([]*PathStats{psA, psB}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Configs) != 2 {
		t.Fatalf("configs = %d", len(plan.Configs))
	}
	if plan.TotalCost > plan.UnsharedCost+1e-9 {
		t.Errorf("sharing increased cost: %g > %g", plan.TotalCost, plan.UnsharedCost)
	}
	// Whether sharing triggers depends on both optima choosing the same
	// (subpath, org); with these stats both tails are Company.divs.name.
	shared := false
	for _, s := range plan.SharedSubpaths {
		if strings.HasPrefix(s, "Company.divs.name/") {
			shared = true
		}
	}
	if shared && plan.TotalCost >= plan.UnsharedCost {
		t.Errorf("shared structure did not reduce cost: %g vs %g", plan.TotalCost, plan.UnsharedCost)
	}
	if _, err := SelectMulti(nil, nil); err == nil {
		t.Error("empty path list accepted")
	}
}

func TestSelectMultiSharingMerge(t *testing.T) {
	// Two structurally identical paths: the optima coincide, so every
	// indexed subpath is shared and the merge arithmetic is fully
	// predictable from one path's matrix.
	psA, psB := Figure7Stats(), Figure7Stats()
	plan, err := SelectMulti([]*PathStats{psA, psB}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, m, err := Select(Figure7Stats(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range plan.Configs {
		if !cfg.Equal(res.Best) {
			t.Fatalf("config %d = %v, want %v", i, cfg, res.Best)
		}
	}

	var query, maint float64
	for _, asg := range res.Best.Assignments {
		entry, ok := m.Entry(asg.A, asg.B, asg.Org)
		if !ok {
			t.Fatalf("no matrix entry for %+v", asg)
		}
		query += entry.SC.Query
		maint += entry.SC.Maint + entry.SC.CMD
	}
	// Each path pays its own query load; a shared structure's
	// maintenance (including the Definition 4.2 boundary charge) is
	// counted once, not per path.
	if want := 2 * res.Best.Cost; math.Abs(plan.UnsharedCost-want) > 1e-9 {
		t.Errorf("UnsharedCost = %g, want %g", plan.UnsharedCost, want)
	}
	if want := 2*query + maint; math.Abs(plan.TotalCost-want) > 1e-9 {
		t.Errorf("TotalCost = %g, want 2*query + 1*maint = %g", plan.TotalCost, want)
	}
	if plan.TotalCost > plan.UnsharedCost+1e-9 {
		t.Errorf("sharing increased cost: %g > %g", plan.TotalCost, plan.UnsharedCost)
	}

	// Every assignment is shared, and the listing is deterministic:
	// sorted, and identical across runs.
	if len(plan.SharedSubpaths) != len(res.Best.Assignments) {
		t.Fatalf("SharedSubpaths = %v, want one per assignment of %v", plan.SharedSubpaths, res.Best)
	}
	if !sort.StringsAreSorted(plan.SharedSubpaths) {
		t.Errorf("SharedSubpaths not sorted: %v", plan.SharedSubpaths)
	}
	again, err := SelectMulti([]*PathStats{Figure7Stats(), Figure7Stats()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plan.SharedSubpaths, again.SharedSubpaths) {
		t.Errorf("SharedSubpaths order unstable: %v vs %v", plan.SharedSubpaths, again.SharedSubpaths)
	}
}

func TestEngineLifecycleThroughAPI(t *testing.T) {
	// The measure–select–reconfigure loop through the public API: open
	// the engine, serve traffic, ask for advice, reconfigure.
	ps := Figure7Stats()
	res, _, err := Select(ps, nil)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Generate(ps, 0.01, 7)
	if err != nil {
		t.Fatal(err)
	}
	db, err := OpenWithOptions(g.Store, g.Path, res.Best, ps.Params.PageSize, EngineOptions{
		Params:  PaperParams(),
		Assumed: ps,
		MinOps:  16,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		if _, err := db.Query(g.EndValues[i%len(g.EndValues)], "Person", false); err != nil {
			t.Fatal(err)
		}
	}
	if w := db.WorkloadSnapshot(); w.Total != 24 {
		t.Fatalf("workload total = %d, want 24", w.Total)
	}
	adv, err := db.Advise()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := db.Reconfigure()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Changed != adv.Changed {
		t.Errorf("advice said changed=%v, reconfigure did changed=%v", adv.Changed, rep.Changed)
	}
	if !db.Config().Equal(adv.Config) {
		t.Errorf("active config %v, advice recommended %v", db.Config(), adv.Config)
	}
	// The static executor stays available for fixed configurations.
	static, err := OpenStatic(g.Store, g.Path, res.Best, ps.Params.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if !static.Config().Equal(res.Best) {
		t.Error("static executor lost its configuration")
	}
}

func TestValueConstructors(t *testing.T) {
	if IntV(3).Int != 3 || StrV("a").Str != "a" || RefV(9).Ref != 9 {
		t.Error("constructors broken")
	}
}

func TestPaperHelpers(t *testing.T) {
	if PaperSchema().Class("Vehicle") == nil {
		t.Error("PaperSchema missing Vehicle")
	}
	if PaperPath().Len() != 3 {
		t.Error("PaperPath length wrong")
	}
	if PaperParams().PageSize != 1024 || DefaultParams().PageSize != 4096 {
		t.Error("params wrong")
	}
	m, err := CostMatrix(Figure7Stats(), nil)
	if err != nil || m.N != 4 {
		t.Errorf("CostMatrix: %v", err)
	}
}
