package ooindex

import (
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/netclient"
	"repro/internal/netserver"
	"repro/internal/oodb"
	"repro/internal/plan"
	"repro/internal/schema"
	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/wal"
	"repro/internal/wire"
)

// Re-exported schema types: classes, attributes, paths (Definition 2.1).
type (
	// Schema is an OO database schema: classes with attributes, inheritance
	// and aggregation hierarchies.
	Schema = schema.Schema
	// Class is one class of a schema.
	Class = schema.Class
	// Attribute describes a class attribute.
	Attribute = schema.Attribute
	// Path is a path C1.A1...An over the aggregation hierarchy.
	Path = schema.Path
)

// Attribute kinds.
const (
	// Atomic marks a primitive-domain attribute.
	Atomic = schema.Atomic
	// Ref marks a reference attribute (part-of relationship).
	Ref = schema.Ref
)

// Re-exported statistics and workload types (Section 3).
type (
	// Params are the physical storage parameters.
	Params = model.Params
	// ClassStats are one class's statistics for its path attribute.
	ClassStats = model.ClassStats
	// Load is the (query, insert, delete) frequency triplet of a class.
	Load = model.Load
	// PathStats couples a path with per-level statistics and workload.
	PathStats = model.PathStats
)

// Re-exported cost and selection types (Sections 4–5).
type (
	// Organization is an index organization (MX, MIX, NIX, NONE).
	Organization = cost.Organization
	// Assignment pairs a subpath with an organization.
	Assignment = core.Assignment
	// Configuration is an index configuration IC_m(P).
	Configuration = core.Configuration
	// Matrix is the per-subpath, per-organization cost matrix.
	Matrix = core.Matrix
	// Result couples the optimal configuration with search statistics.
	Result = core.Result
)

// Index organizations.
const (
	// MX is the multi-index organization.
	MX = cost.MX
	// MIX is the multi-inherited index organization.
	MIX = cost.MIX
	// NIX is the nested inherited index organization.
	NIX = cost.NIX
	// NoIndex leaves a subpath unindexed (the Section 6 extension).
	NoIndex = cost.NONE
	// PathIndexOrg is the path index of [6] (Section 6 incorporation),
	// with both an analytic cost model and a working implementation.
	PathIndexOrg = cost.PX
	// NestedIndexOrg is the nested index of [1] (Section 6 incorporation),
	// with an analytic cost model and a working structure that answers
	// starting-class queries only.
	NestedIndexOrg = cost.NX
)

// Re-exported working-database types.
type (
	// Store is the paged object store.
	Store = oodb.Store
	// OID identifies a stored object.
	OID = oodb.OID
	// Value is an attribute value (integer, string or reference).
	Value = oodb.Value
	// Object is a stored object.
	Object = oodb.Object
	// Database is the lifecycle-managed engine: a store coupled with the
	// working indexes of the active configuration, a live workload
	// recorder, and online reconfiguration (Advise, Reconfigure,
	// WorkloadSnapshot). Queries are never blocked by a reconfiguration
	// in flight.
	Database = engine.Engine
	// EngineOptions tune the engine's reconfiguration loop (drift
	// threshold, automatic check cadence, re-selection columns).
	EngineOptions = engine.Options
	// Advice is the outcome of one online re-selection pass.
	Advice = engine.Advice
	// ReconfigureReport describes one applied (or skipped) swap.
	ReconfigureReport = engine.Report
	// Workload is a point-in-time view of the recorded live traffic.
	Workload = stats.Workload
	// Probe is one point query of a batch passed to Database.QueryBatch:
	// the batch fans across a bounded worker pool and returns results in
	// probe order, bit-identical to issuing the probes sequentially.
	Probe = exec.Probe
	// Update is one in-place object update of a batch passed to
	// Database.UpdateBatch: the named attributes of OID are replaced (an
	// empty value slice removes the attribute; unnamed attributes keep
	// their values).
	Update = exec.Update
	// Generated is a synthetic database materialized from statistics.
	Generated = gen.Generated
	// ShardedDB is an OID-hash-partitioned database: N independent
	// lifecycle engines behind one facade. Writes route to the shard
	// owning the OID (one modulo, no directory); value queries fan out
	// and merge answers bit-identically to a single engine; selection
	// and reconfiguration run per shard, so each partition settles on
	// the configuration its own traffic justifies. See OpenSharded.
	ShardedDB = shard.DB
	// ShardDriftView aggregates per-shard drift (worst shard and
	// traffic-weighted mean) for a sharded database.
	ShardDriftView = shard.DriftView
	// DurableOptions tune a durable engine: WAL commit policy, group-commit
	// window, automatic checkpoint threshold, buffer-pool capacity. The
	// embedded EngineOptions keep their in-memory meaning.
	DurableOptions = engine.DurableOptions
	// ShardedDurableOptions tune a durable sharded database; the embedded
	// DurableOptions apply to every shard's engine.
	ShardedDurableOptions = shard.DurableOptions
	// WALPolicy selects when the write-ahead log fsyncs: on every commit,
	// on a group-commit window, or never.
	WALPolicy = wal.Policy
)

// WAL commit policies for DurableOptions.Policy.
const (
	// SyncAlways fsyncs the WAL on every commit — full durability, one
	// fsync per write operation.
	SyncAlways = wal.SyncAlways
	// SyncGroup fsyncs at most once per group window (default 2ms),
	// amortizing the fsync over a burst of commits; a crash can lose the
	// last window's acknowledged operations.
	SyncGroup = wal.SyncGroup
	// SyncNever leaves syncing to the OS page cache — fastest, weakest.
	SyncNever = wal.SyncNever
)

// ErrCrossShard reports an insert or update whose references span
// shards; a path instance must stay within one shard (see ShardedDB).
var ErrCrossShard = shard.ErrCrossShard

// Re-exported serving-tier types: the TCP server, its client, and the
// wire-level error. The protocol is a length-prefixed, CRC-framed
// binary format; see internal/wire and DESIGN.md §10.
type (
	// NetServer serves a Database or ShardedDB over TCP, coalescing
	// concurrently-arriving requests into the engine's batch kernels
	// (QueryBatch, UpdateBatch) so the zero-allocation serving path and
	// the group-commit fsync amortization survive the socket boundary.
	NetServer = netserver.Server
	// NetServerOptions configure the server: the served path, the
	// OID-to-class hook for workload recording, the coalescing window
	// cap, and the per-request control arm for benchmarks.
	NetServerOptions = netserver.Options
	// NetBackend is what a NetServer serves; *Database and *ShardedDB
	// both satisfy it.
	NetBackend = netserver.Backend
	// NetClient is the pipelining client: synchronous calls mirror the
	// Database methods, Go-prefixed calls return a NetCall future so many
	// requests share one round trip. Predicate and PredicateValues ship
	// WirePredicate trees to the server's planner.
	NetClient = netclient.Client
	// NetCall is one in-flight pipelined request; Wait blocks for its
	// response.
	NetCall = netclient.Call
	// RemoteError is a server-side error delivered over the wire; the
	// connection remains usable after one.
	RemoteError = netclient.RemoteError
)

// NewNetServer wraps a backend in a TCP server; start it with Listen
// (or Serve) and stop it with Shutdown, which drains every request
// already read from a socket before returning.
func NewNetServer(be NetBackend, opts NetServerOptions) *NetServer {
	return netserver.New(be, opts)
}

// DialNet connects to a NetServer (or a running ixserved).
func DialNet(addr string) (*NetClient, error) { return netclient.Dial(addr) }

// WirePredicate is a predicate tree in its wire form: Eq/Range leaves
// name server-registered path ids instead of *Path values, so a client
// needs no schema to query. Build trees with WireEq, WireRange, WireAnd
// and WireOr; ship them with NetClient.Predicate (OIDs) or
// NetClient.PredicateValues (ending-attribute projection). The server
// resolves ids through NetServer.RegisterPath, plans each distinct tree
// once per coalesced window, and answers errors per request — a bad
// tree never takes down the connection.
type WirePredicate = wire.PredNode

// WireEq builds the wire predicate "path id's ending attribute = v".
func WireEq(pathID uint16, v Value) WirePredicate { return wire.EqPred(pathID, v) }

// WireRange builds the wire predicate "path id's ending attribute IN [lo, hi)".
func WireRange(pathID uint16, lo, hi Value) WirePredicate { return wire.RangePred(pathID, lo, hi) }

// WireAnd conjoins wire predicates (nested WireAnds flatten).
func WireAnd(kids ...WirePredicate) WirePredicate { return wire.AndPred(kids...) }

// WireOr disjoins wire predicates (nested WireOrs flatten).
func WireOr(kids ...WirePredicate) WirePredicate { return wire.OrPred(kids...) }

// Re-exported planner types: conjunctive predicates over several
// registered paths, compiled to selectivity-ordered probe plans.
type (
	// Planner compiles And/Or/Eq/Range predicate trees over registered
	// paths into cost-ordered physical plans; its Query method is the
	// one-call entry (plan, execute, record). Register each path with the
	// index source that serves it (a Database, a ShardedDB or an OpenStatic
	// executor).
	Planner = plan.Planner
	// Predicate is a boolean combination of path predicates, built with
	// Eq, Range, And and Or.
	Predicate = plan.Predicate
	// QueryPlan is one compiled physical plan: Execute returns OIDs,
	// ExecuteValues projects an ending attribute, Explain renders the
	// chosen probe order and residual filters.
	QueryPlan = plan.Plan
	// PlanOptions tune plan compilation (DeclaredOrder pins the written
	// conjunct order instead of selectivity ordering).
	PlanOptions = plan.Options
	// PredicateSource is anything that can answer point and range probes
	// for a registered path; Database, ShardedDB and exec.Configured all
	// satisfy it.
	PredicateSource = plan.Source
)

// NewPlanner returns an empty planner over the store; register paths
// with (*Planner).Register, then Plan or Query predicates. Residual
// conjuncts — leaves whose path has no registered index — are verified
// against the store by navigation.
func NewPlanner(st *Store) *Planner { return plan.NewPlanner(st) }

// Eq builds the predicate "path's ending attribute = v".
func Eq(p *Path, v Value) Predicate { return plan.Eq(p, v) }

// Range builds the predicate "path's ending attribute IN [lo, hi)".
func Range(p *Path, lo, hi Value) Predicate { return plan.Range(p, lo, hi) }

// And conjoins predicates (nested Ands flatten).
func And(preds ...Predicate) Predicate { return plan.And(preds...) }

// Or disjoins predicates (nested Ors flatten).
func Or(preds ...Predicate) Predicate { return plan.Or(preds...) }

// IntV, StrV and RefV construct attribute values.
func IntV(v int64) Value  { return oodb.IntV(v) }
func StrV(v string) Value { return oodb.StrV(v) }
func RefV(o OID) Value    { return oodb.RefV(o) }

// NewSchema returns an empty schema.
func NewSchema() *Schema { return schema.New() }

// NewPath builds and validates a path from a starting class through the
// named attributes (Definition 2.1).
func NewPath(s *Schema, start string, attrs ...string) (*Path, error) {
	return schema.NewPath(s, start, attrs...)
}

// NewPathStats builds a statistics skeleton for a path; fill it with
// (*PathStats).MustSet or SetClass/SetLoad.
func NewPathStats(p *Path, params Params) *PathStats { return model.NewPathStats(p, params) }

// DefaultParams returns 4 KiB-page physical parameters.
func DefaultParams() Params { return model.DefaultParams() }

// PaperParams returns the 1 KiB-page parameters calibrated to reproduce
// the paper's Example 5.1 (see DESIGN.md §6).
func PaperParams() Params { return model.PaperParams() }

// PaperSchema returns the Figure 1 schema (Person/Vehicle/Bus/Truck/
// Company/Division).
func PaperSchema() *Schema { return schema.PaperSchema() }

// PaperPath returns P_e = Person.owns.man.name (Example 2.1).
func PaperPath() *Path { return schema.PaperPathOwnsManName() }

// Figure7Stats returns the Example 5.1 path with the Figure 7 statistics
// and workload.
func Figure7Stats() *PathStats { return model.Figure7Stats() }

// Organizations is the paper's organization set {MX, MIX, NIX}.
var Organizations = cost.Organizations

// OrganizationsWithNoIndex adds the no-index extension column.
var OrganizationsWithNoIndex = cost.OrganizationsWithNone

// OrganizationsExtended is the full column set: the paper's three plus the
// Section 6 incorporations (PX, NX) and the no-index option.
var OrganizationsExtended = cost.OrganizationsExtended

// NaiveQueryRange evaluates A_n IN [lo, hi) by forward navigation.
func NaiveQueryRange(st *Store, p *Path, lo, hi Value, targetClass string, hierarchy bool) ([]OID, error) {
	return exec.NaiveQueryRange(st, p, lo, hi, targetClass, hierarchy)
}

// CollectStats derives PathStats from a live store by scanning each class
// once: cardinalities, distinct value counts and fan-outs per level.
// Workload frequencies are left zero (they describe future operations);
// fill them with SetLoad or stats helpers before selecting.
func CollectStats(st *Store, p *Path, params Params) (*PathStats, error) {
	return stats.Collect(st, p, params)
}

// CostMatrix computes the Cost_Matrix of Section 5 for a path's statistics
// under the given organizations (nil means {MX, MIX, NIX}).
func CostMatrix(ps *PathStats, orgs []Organization) (*Matrix, error) {
	return core.NewMatrixFromStats(ps, orgs)
}

// Select runs the full selection algorithm — Cost_Matrix, Min_Cost and the
// branch-and-bound Opt_Ind_Con — returning the optimal configuration, the
// search statistics, and the matrix for inspection.
func Select(ps *PathStats, orgs []Organization) (Result, *Matrix, error) {
	return core.Select(ps, orgs)
}

// SubpathCost prices one subpath [a..b] under one organization
// (Proposition 4.2's per-subpath term).
func SubpathCost(ps *PathStats, a, b int, org Organization) (float64, error) {
	sc, err := cost.SubpathProcessingCost(ps, a, b, org)
	if err != nil {
		return 0, err
	}
	return sc.Total(), nil
}

// NewStore creates an empty object store over the schema.
func NewStore(s *Schema, pageSize int) (*Store, error) { return oodb.NewStore(s, pageSize) }

// Generate materializes a synthetic database matching ps scaled by scale.
func Generate(ps *PathStats, scale float64, seed int64) (*Generated, error) {
	return gen.Generate(ps, scale, seed)
}

// Open builds the working index structures of a configuration over a
// store's current contents and returns the lifecycle-managed database:
// Query, Insert, Update and Delete keep the indexes maintained and feed
// the workload recorder; Advise, Reconfigure and WorkloadSnapshot close
// the measure–select–reconfigure loop online. With the zero options the
// engine never reconfigures on its own; see OpenWithOptions.
func Open(st *Store, p *Path, cfg Configuration, pageSize int) (*Database, error) {
	return engine.New(st, p, cfg, pageSize, engine.Options{})
}

// OpenWithOptions is Open with explicit engine options: the drift
// threshold and check cadence for automatic background reconfiguration,
// the assumed workload baseline, and the organization columns online
// re-selection may choose from.
func OpenWithOptions(st *Store, p *Path, cfg Configuration, pageSize int, opts EngineOptions) (*Database, error) {
	return engine.New(st, p, cfg, pageSize, opts)
}

// OpenSharded creates an empty OID-hash-partitioned database: nShards
// independent engines (each with its own store, index set, workload
// recorder and drift-triggered re-selection under opts) composed behind
// one facade. Shard i's store only mints OIDs congruent to i mod
// nShards, so OID-keyed operations route with one modulo; value queries
// fan out across shards and merge. Populate through Insert (routed by
// reference locality, round-robin for reference-free roots) or InsertAt
// (explicit co-location); drive per-shard selection with Advise,
// Reconfigure and Shard(i). To shard pre-populated stores, build them
// with shard.NewStores and open with shard.Open.
func OpenSharded(p *Path, cfg Configuration, pageSize, nShards int, opts EngineOptions) (*ShardedDB, error) {
	return shard.New(p.Schema(), p, cfg, pageSize, nShards, shard.Options{Engine: opts})
}

// OpenDurable opens (or creates) a disk-backed database in dir: a
// lifecycle engine whose writes are write-ahead logged and fsynced per
// the commit policy, whose pages live behind a checksummed file-backed
// buffer pool, and which checkpoints (snapshot + manifest + WAL
// truncation) automatically as the log grows. Reopening the directory
// recovers — checkpoint, then WAL replay, then index rebuild — so
// acknowledged operations survive crashes; the persisted configuration
// wins over cfg on reopen. Call Close for a clean shutdown (empty WAL on
// the next open).
func OpenDurable(dir string, p *Path, cfg Configuration, pageSize int, opts DurableOptions) (*Database, error) {
	return engine.OpenDurable(dir, p.Schema(), p, cfg, pageSize, opts)
}

// OpenShardedDurable opens (or creates) a disk-backed sharded database
// in dir: nShards durable engines in per-shard subdirectories, each with
// its own WAL, checkpoints and recovery, recovered in parallel on
// reopen. The directory's shard count and page size are persisted and
// must match on reopen — OID routing depends on them.
func OpenShardedDurable(dir string, p *Path, cfg Configuration, pageSize, nShards int, opts ShardedDurableOptions) (*ShardedDB, error) {
	return shard.OpenShardedDurable(dir, p.Schema(), p, cfg, pageSize, nShards, opts)
}

// OpenStatic builds the working indexes of a fixed configuration without
// lifecycle management — the plain executor Open wrapped before the
// engine existed. Use it when the configuration must never change
// underneath the caller.
func OpenStatic(st *Store, p *Path, cfg Configuration, pageSize int) (*exec.Configured, error) {
	return exec.NewConfigured(st, p, cfg, pageSize)
}

// NaiveQuery evaluates a nested predicate by forward navigation, without
// indexes — the baseline the paper's introduction motivates indexing with.
func NaiveQuery(st *Store, p *Path, value Value, targetClass string, hierarchy bool) ([]OID, error) {
	return exec.NaiveQuery(st, p, value, targetClass, hierarchy)
}

// MultiPlan is the result of selecting configurations for several paths
// (the Section 6 "further research" extension): per-path configurations
// plus the deduplicated set of physical subpath indexes, where paths
// sharing a structurally identical indexed subpath share one structure.
type MultiPlan = core.MultiPlan

// SelectBatch runs the full selection for many paths concurrently — one
// worker per CPU — reusing pooled cost-matrix buffers across paths, and
// returns one Result per path (in input order). Use it when only the
// optimal configurations are needed; Select additionally returns the
// matrix for inspection.
func SelectBatch(pss []*PathStats, orgs []Organization) ([]Result, error) {
	return core.SelectBatch(pss, orgs)
}

// SelectBatchWeighted is SelectBatch with every path's load triplets
// re-derived from a recorded workload snapshot (engine.WorkloadSnapshot,
// shard.DB.WorkloadSnapshot) before selection — observed class
// frequencies, range probes priced as ranges, residual predicate leaves
// as query load. A zero-valued snapshot selects on the caller's
// statistics unchanged, bit for bit.
func SelectBatchWeighted(pss []*PathStats, orgs []Organization, w Workload) ([]Result, error) {
	return core.SelectBatchWeighted(pss, orgs, w)
}

// SelectMulti selects configurations for several paths and merges
// structurally identical indexed subpaths. Paths must share a schema.
// The per-path selections run concurrently; the merge is deterministic in
// input order.
func SelectMulti(pss []*PathStats, orgs []Organization) (MultiPlan, error) {
	return core.SelectMulti(pss, orgs)
}

// SelectMultiWeighted is SelectMulti weighted by a recorded workload
// snapshot: per-path load triplets are re-derived from the observed class
// counters and predicate mix (normalized fleet-wide, so paths keep their
// relative traffic), a residual-heavy path earns an index on its cost
// merits, and a path the workload never touched sheds its indexes to the
// explicit NONE assignment when NONE is among the candidate
// organizations. With a zero-valued snapshot the result is bit-identical
// to SelectMulti — the degradation contract the weighted-equivalence
// property suite enforces.
func SelectMultiWeighted(pss []*PathStats, orgs []Organization, w Workload) (MultiPlan, error) {
	return core.SelectMultiWeighted(pss, orgs, w)
}
