// Command ixserved serves an index-selected object database over TCP.
//
// It opens (or generates) a database on the paper's Figure 7 path
// Person.owns.man.divs.name, wraps it in the netserver coalescing
// dispatcher, and serves the binary wire protocol until SIGINT/SIGTERM.
// Shutdown is graceful: the listener closes, every request already read
// off a socket is answered, the engines checkpoint, and the process
// exits 0 — an acknowledged write is on disk when the prompt returns.
//
// Usage:
//
//	ixserved -addr :7070 -dir /var/lib/ixserved          # durable, single engine
//	ixserved -addr :7070 -dir /var/lib/ixserved -shards 4 # durable, sharded
//	ixserved -addr :7070 -seed 42 -scale 0.01            # in-memory, pre-generated
//
// With -dir the store is disk-backed (WAL + pager, crash-recoverable);
// a fresh directory starts empty, an existing one recovers. Without
// -dir the store lives in memory and is seeded from the Figure 7
// statistics so there is something to query. -checkevery enables the
// self-tuning loop: every N operations the server-side engine checks
// workload drift against the model and reconfigures its indexes in the
// background while connections keep flowing.
//
// Predicate queries: the served path is always registered as wire path
// id 1 with the backend as its index source, so clients can ship
// predicate trees (OpPredicate) immediately. -paths registers extra
// ids, e.g.
//
//	ixserved -paths "2=Person.age,3=Person.owns.color"
//
// Each extra path gets its own whole-path NIX executor over the store
// in single-engine modes; in sharded mode extra paths register for
// decoding only (no unified store to index), so predicates on them
// answer with the planner's no-source error rather than wrong results.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/netserver"
	"repro/internal/oodb"
	"repro/internal/plan"
	"repro/internal/schema"
	"repro/internal/shard"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "TCP address to listen on")
	dir := flag.String("dir", "", "durable data directory (empty: in-memory, seeded from -seed/-scale)")
	shards := flag.Int("shards", 0, "number of OID-partitioned shards (0: single engine)")
	seed := flag.Int64("seed", 42, "seed for the in-memory generated database")
	scale := flag.Float64("scale", 0.01, "scale factor for the in-memory generated database")
	checkEvery := flag.Int("checkevery", 0, "check workload drift every N ops and auto-tune (0: off)")
	maxBatch := flag.Int("maxbatch", 0, "coalescing window cap in requests (0: default)")
	noCoalesce := flag.Bool("no-coalesce", false, "dispatch each request alone (benchmark control arm)")
	paths := flag.String("paths", "", `extra predicate path registrations, "id=Class.attr...,id=..." (served path is always id 1)`)
	flag.Parse()

	if err := run(*addr, *dir, *shards, *seed, *scale, *checkEvery, *maxBatch, *noCoalesce, *paths); err != nil {
		log.Fatal(err)
	}
}

// backend is what ixserved needs beyond netserver.Backend: a close that
// quiesces background work and (when durable) checkpoints.
type backend interface {
	netserver.Backend
	Close() error
}

func run(addr, dir string, shards int, seed int64, scale float64, checkEvery, maxBatch int, noCoalesce bool, pathSpecs string) error {
	eopts := engine.Options{CheckEvery: uint64(checkEvery)}
	cfg := func(p *schema.Path) core.Configuration {
		return core.Configuration{Assignments: []core.Assignment{
			{A: 1, B: p.Len(), Org: cost.NIX},
		}}
	}
	pageSize := model.PaperParams().PageSize

	var (
		be      backend
		p       *schema.Path
		classOf func(oodb.OID) (string, bool)
		st      *oodb.Store // unified store for extra-path executors; nil when sharded
	)
	switch {
	case dir != "":
		p = schema.PaperPathOwnsManDivsName()
		s := p.Schema()
		if shards > 1 {
			db, err := shard.OpenShardedDurable(dir, s, p, cfg(p), pageSize, shards,
				shard.DurableOptions{Engine: engine.DurableOptions{Options: eopts}})
			if err != nil {
				return err
			}
			be, classOf = db, shardClassOf(db)
		} else {
			e, err := engine.OpenDurable(dir, s, p, cfg(p), pageSize,
				engine.DurableOptions{Options: eopts})
			if err != nil {
				return err
			}
			be, classOf, st = e, storeClassOf(e.Store()), e.Store()
		}
	default:
		if shards > 1 {
			p = schema.PaperPathOwnsManDivsName()
			db, err := shard.New(p.Schema(), p, cfg(p), pageSize, shards,
				shard.Options{Engine: eopts})
			if err != nil {
				return err
			}
			// The fan-in of a generated single-store graph cannot be
			// partitioned (references must stay shard-local), so sharded
			// in-memory serving populates per-shard trees directly.
			if err := populateSharded(db, shards, scale, seed); err != nil {
				return err
			}
			be, classOf = db, shardClassOf(db)
			break
		}
		g, err := gen.Generate(model.Figure7Stats(), scale, seed)
		if err != nil {
			return err
		}
		p = g.Path
		{
			e, err := engine.New(g.Store, p, cfg(p), pageSize, eopts)
			if err != nil {
				return err
			}
			be, classOf, st = e, storeClassOf(e.Store()), e.Store()
		}
	}

	srv := netserver.New(be, netserver.Options{
		Path:              p,
		ClassOf:           classOf,
		MaxBatch:          maxBatch,
		DisableCoalescing: noCoalesce,
		Store:             st,
	})

	// The served path is always predicate-addressable as id 1, probed
	// through the backend's own maintained indexes.
	if err := srv.RegisterPath(1, p, be, nil); err != nil {
		return err
	}
	log.Printf("ixserved: predicate path 1 = %s (backend indexes)", p)
	extra, err := parsePathSpecs(p.Schema(), pathSpecs)
	if err != nil {
		return err
	}
	for _, sp := range extra {
		var src plan.Source
		how := "decode-only; no unified store"
		if st != nil {
			ex, err := exec.NewConfigured(st, sp.path, cfg(sp.path), pageSize)
			if err != nil {
				return fmt.Errorf("index extra path %s: %w", sp.path, err)
			}
			src, how = ex, "whole-path NIX executor"
		}
		if err := srv.RegisterPath(sp.id, sp.path, src, nil); err != nil {
			return err
		}
		log.Printf("ixserved: predicate path %d = %s (%s)", sp.id, sp.path, how)
	}
	lnAddr, err := srv.Listen(addr)
	if err != nil {
		return err
	}
	log.Printf("ixserved: serving %s on %s (shards=%d durable=%v coalesce=%v)",
		p, lnAddr, shards, dir != "", !noCoalesce)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	got := <-sig
	log.Printf("ixserved: %s — draining", got)

	if err := srv.Shutdown(); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	w := srv.Workload()
	reqs, batches, coalesced := srv.CoalesceStats()
	log.Printf("ixserved: served %d ops (%d requests in %d batches, %d coalesced)",
		w.Total, reqs, batches, coalesced)
	if err := be.Close(); err != nil {
		return fmt.Errorf("close: %w", err)
	}
	log.Printf("ixserved: clean exit")
	return nil
}

// pathSpec is one "-paths" registration: wire id plus parsed path.
type pathSpec struct {
	id   uint16
	path *schema.Path
}

// parsePathSpecs parses "id=Class.attr.attr,..." against the schema.
// Id 1 is reserved for the served path.
func parsePathSpecs(s *schema.Schema, spec string) ([]pathSpec, error) {
	if spec == "" {
		return nil, nil
	}
	var out []pathSpec
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		idStr, pathStr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("-paths entry %q is not id=Class.attr...", part)
		}
		id, err := strconv.ParseUint(idStr, 10, 16)
		if err != nil || id <= 1 {
			return nil, fmt.Errorf("-paths entry %q: id must be an integer > 1 (1 is the served path)", part)
		}
		steps := strings.Split(pathStr, ".")
		if len(steps) < 2 {
			return nil, fmt.Errorf("-paths entry %q: path needs a class and at least one attribute", part)
		}
		p, err := schema.NewPath(s, steps[0], steps[1:]...)
		if err != nil {
			return nil, fmt.Errorf("-paths entry %q: %w", part, err)
		}
		out = append(out, pathSpec{id: uint16(id), path: p})
	}
	return out, nil
}

// storeClassOf adapts a store's Peek to the server's recording hook.
func storeClassOf(st *oodb.Store) func(oodb.OID) (string, bool) {
	return func(oid oodb.OID) (string, bool) {
		o, ok := st.Peek(oid)
		if !ok {
			return "", false
		}
		return o.Class, true
	}
}

// shardClassOf routes the lookup to the owning shard's store.
func shardClassOf(db *shard.DB) func(oodb.OID) (string, bool) {
	return func(oid oodb.OID) (string, bool) {
		o, err := db.Get(oid)
		if err != nil {
			return "", false
		}
		return o.Class, true
	}
}

// populateSharded fills each shard with its own Figure-7-shaped tree —
// divisions named over the same "val-%05d" value pool the generator
// uses, companies over divisions, vehicles over companies, persons over
// vehicles — scaled down from the paper's cardinalities. References are
// intra-shard by construction, which is what the OID-partitioned facade
// requires.
func populateSharded(db *shard.DB, shards int, scale float64, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	count := func(n float64) int {
		c := int(n * scale / float64(shards))
		if c < 2 {
			c = 2
		}
		return c
	}
	nDiv, nCo, nVeh, nPer := count(1000), count(1000), count(20000), count(200000)
	distinct := count(1000) * shards
	for s := 0; s < shards; s++ {
		divs := make([]oodb.OID, nDiv)
		for i := range divs {
			v := oodb.StrV(fmt.Sprintf("val-%05d", rng.Intn(distinct)))
			oid, err := db.InsertAt(s, "Division", map[string][]oodb.Value{"name": {v}})
			if err != nil {
				return err
			}
			divs[i] = oid
		}
		cos := make([]oodb.OID, nCo)
		for i := range cos {
			// Companies fan out to ~4 divisions, as in Figure 7.
			refs := make([]oodb.Value, 0, 4)
			for k := 0; k < 4; k++ {
				refs = append(refs, oodb.RefV(divs[rng.Intn(nDiv)]))
			}
			oid, err := db.Insert("Company", map[string][]oodb.Value{"divs": refs})
			if err != nil {
				return err
			}
			cos[i] = oid
		}
		vehs := make([]oodb.OID, nVeh)
		for i := range vehs {
			oid, err := db.Insert("Vehicle", map[string][]oodb.Value{
				"man": {oodb.RefV(cos[rng.Intn(nCo)])},
			})
			if err != nil {
				return err
			}
			vehs[i] = oid
		}
		for i := 0; i < nPer; i++ {
			if _, err := db.Insert("Person", map[string][]oodb.Value{
				"owns": {oodb.RefV(vehs[rng.Intn(nVeh)])},
			}); err != nil {
				return err
			}
		}
	}
	return nil
}
