// Command ixstress drives a multi-connection read/write mix against a
// running ixserved and reports realized throughput and latency.
//
// It is the networked counterpart of experiment E2's serving mix: each
// of -conns connections runs its own client with up to -depth requests
// pipelined, issuing ~90% point queries split across the whole path
// ("Person") and the ending level ("Division"), plus inserts and
// deletes in the requested -write fraction. Per-request latency is
// measured submit-to-response through the pipeline, so the report shows
// what a caller would actually observe, coalescing included.
//
// Usage:
//
//	ixserved -addr 127.0.0.1:7070 &
//	ixstress -addr 127.0.0.1:7070 -conns 64 -ops 2000 -depth 32 -write 0.1
//
// With -sync the pipeline is disabled — every request waits for its
// response before the next is sent (one request per RTT), the control
// arm that shows what pipelining and coalescing buy.
//
// -pred replaces that fraction of the read mix with predicate-tree
// queries (OpPredicate) drawn from a small pool of Eq/Or trees over
// wire path id 1 — ixserved always registers its served path there.
// The pool repeats across connections on purpose: identical trees
// landing in one coalescing window share a single planner descent, so
// this arm exercises the server's predicate dedup under load.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/netclient"
	"repro/internal/oodb"
	"repro/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "server address")
	conns := flag.Int("conns", 8, "number of concurrent connections")
	ops := flag.Int("ops", 2000, "operations per connection")
	depth := flag.Int("depth", 32, "pipeline depth per connection")
	write := flag.Float64("write", 0.1, "fraction of operations that are inserts/deletes")
	pred := flag.Float64("pred", 0, "fraction of operations that are predicate-tree queries (path id 1)")
	values := flag.Int("values", 100, "distinct point-query values (val-00000..)")
	seed := flag.Int64("seed", 1, "per-connection workload seed base")
	sync_ := flag.Bool("sync", false, "one request per round trip (disables pipelining)")
	flag.Parse()

	rep, err := stress(*addr, *conns, *ops, *depth, *write, *pred, *values, *seed, *sync_)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep)
}

type result struct {
	lats []time.Duration
	errs int
	err  error
}

// stress runs the fleet and renders the aggregate report.
func stress(addr string, conns, ops, depth int, write, pred float64, values int, seed int64, syncMode bool) (string, error) {
	if syncMode {
		depth = 1
	}
	results := make([]result, conns)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = drive(addr, ops, depth, write, pred, values, seed+int64(w))
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	total, failed := 0, 0
	for w, r := range results {
		if r.err != nil {
			return "", fmt.Errorf("connection %d: %v", w, r.err)
		}
		all = append(all, r.lats...)
		total += len(r.lats)
		failed += r.errs
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	mode := "pipelined"
	if syncMode {
		mode = "sync (1 req/RTT)"
	}
	if pred > 0 {
		mode += fmt.Sprintf(", pred %.0f%%", 100*pred)
	}
	return fmt.Sprintf(
		"ixstress: %d conns x %d ops, depth %d, %s, write %.0f%%\n"+
			"  %d ops in %.2fs = %.0f ops/sec (%d server-side errors)\n"+
			"  latency p50 %v  p99 %v  max %v\n",
		conns, ops, depth, mode, 100*write,
		total, elapsed.Seconds(), float64(total)/elapsed.Seconds(), failed,
		all[len(all)/2].Round(time.Microsecond),
		all[len(all)*99/100].Round(time.Microsecond),
		all[len(all)-1].Round(time.Microsecond)), nil
}

// predPool builds the shared predicate-tree pool: Eq leaves and small
// Or trees over path id 1's "val-%05d" value space. Every connection
// derives the same pool, so identical trees collide in the server's
// coalescing windows and share planner descents.
func predPool(values int) []wire.PredNode {
	pick := func(i int) oodb.Value {
		return oodb.StrV(fmt.Sprintf("val-%05d", i%values))
	}
	pool := make([]wire.PredNode, 0, 8)
	for i := 0; i < 4; i++ {
		pool = append(pool, wire.EqPred(1, pick(i*7)))
	}
	for i := 0; i < 4; i++ {
		pool = append(pool, wire.OrPred(wire.EqPred(1, pick(i*11+1)), wire.EqPred(1, pick(i*13+2))))
	}
	return pool
}

// drive runs one connection's share of the workload: a sliding window
// of up to `depth` in-flight requests, latency measured per request
// from send to response.
func drive(addr string, ops, depth int, write, pred float64, values int, seed int64) result {
	c, err := netclient.Dial(addr)
	if err != nil {
		return result{err: err}
	}
	defer c.Close() //nolint:errcheck

	preds := predPool(values)
	rng := rand.New(rand.NewSource(seed))
	type inflight struct {
		call   *netclient.Call
		sent   time.Time
		insert bool
	}
	var (
		window []inflight
		minted []oodb.OID
		res    result
	)
	res.lats = make([]time.Duration, 0, ops)
	settle := func(f inflight) {
		oids, err := f.call.Wait()
		res.lats = append(res.lats, time.Since(f.sent))
		if err != nil {
			res.errs++
			return
		}
		if f.insert && len(oids) == 1 {
			minted = append(minted, oids[0])
		}
	}
	for i := 0; i < ops; i++ {
		var f inflight
		f.sent = time.Now()
		switch {
		case rng.Float64() < write:
			// Writes alternate insert/delete so the store stays near its
			// initial size across a long run.
			if len(minted) > 0 && rng.Intn(2) == 0 {
				oid := minted[len(minted)-1]
				minted = minted[:len(minted)-1]
				f.call = c.GoDelete(oid)
			} else {
				v := oodb.StrV(fmt.Sprintf("val-stress-%d-%06d", seed, i))
				f.call = c.GoInsert("Division", map[string][]oodb.Value{"name": {v}})
				f.insert = true
			}
		case rng.Float64() < pred:
			f.call = c.GoPredicate(&preds[rng.Intn(len(preds))], "Person", false)
		default:
			v := oodb.StrV(fmt.Sprintf("val-%05d", rng.Intn(values)))
			class, hier := "Person", false
			if rng.Intn(10) < 3 {
				class, hier = "Division", rng.Intn(2) == 0
			}
			f.call = c.GoQuery(v, class, hier)
		}
		window = append(window, f)
		if len(window) >= depth {
			settle(window[0])
			window = window[1:]
		}
	}
	for _, f := range window {
		settle(f)
	}
	if err := c.Err(); err != nil {
		res.err = err
	}
	return res
}
