// Command ixselect selects the optimal index configuration for a path from
// a JSON specification of the schema, statistics and workload:
//
//	ixselect -spec path.json        # read a spec file
//	ixselect -example               # print the Figure 7 spec as a template
//	ixselect -example | ixselect    # spec from stdin
//	ixselect -json < path.json      # machine-readable result
//
// The output is the cost matrix (per-subpath minimum starred), the optimal
// configuration found by branch-and-bound, and the comparison against the
// best whole-path single index. The spec may restrict or extend the
// organization columns ("MX","MIX","NIX","NONE","PX","NX") and declare
// range-predicate workloads via "selectivity".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/spec"
)

func usage() {
	w := flag.CommandLine.Output()
	fmt.Fprintln(w, "ixselect selects the optimal index configuration for a path from a JSON")
	fmt.Fprintln(w, "specification of the schema, statistics and workload (Section 5 of the paper).")
	fmt.Fprintln(w, "\nUsage:\n\n\tixselect [flags] < spec.json")
	fmt.Fprintln(w, "\nTypical invocations:")
	fmt.Fprintln(w, "\tixselect -example            print the Figure 7 spec as a template")
	fmt.Fprintln(w, "\tixselect -spec path.json     select from a spec file")
	fmt.Fprintln(w, "\tixselect -example | ixselect pipe the template through selection")
	fmt.Fprintln(w, "\tixselect -json < path.json   machine-readable configuration")
	fmt.Fprintln(w, "\nThe spec may restrict or extend the organization columns")
	fmt.Fprintln(w, `("MX","MIX","NIX","NONE","PX","NX") and declare range-predicate workloads`)
	fmt.Fprintln(w, `via "selectivity". The report shows the cost matrix with each subpath's`)
	fmt.Fprintln(w, "minimum starred, the branch-and-bound optimum, and the saving over the")
	fmt.Fprintln(w, "best whole-path single index.")
	fmt.Fprintln(w, "\nFlags:")
	flag.PrintDefaults()
}

func main() {
	specPath := flag.String("spec", "", "JSON spec file (default: stdin)")
	example := flag.Bool("example", false, "print the Figure 7 spec as a template and exit")
	asJSON := flag.Bool("json", false, "emit the result as JSON instead of a report")
	flag.Usage = usage
	flag.Parse()

	if *example {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(spec.Example()); err != nil {
			fatal(err)
		}
		return
	}
	var in io.Reader = os.Stdin
	if *specPath != "" {
		f, err := os.Open(*specPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	s, err := spec.Parse(in)
	if err != nil {
		fatal(err)
	}
	ps, orgs, err := s.Build()
	if err != nil {
		fatal(err)
	}
	res, m, err := core.Select(ps, orgs)
	if err != nil {
		fatal(err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(spec.EncodeConfiguration(res.Best, ps.Path)); err != nil {
			fatal(err)
		}
		return
	}
	report(ps, m, res)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ixselect:", err)
	os.Exit(1)
}

func report(ps *model.PathStats, m *core.Matrix, res core.Result) {
	fmt.Printf("Path: %s (length %d)\n\n", ps.Path, ps.Len())
	header := []string{"subpath"}
	for _, org := range m.Orgs {
		header = append(header, org.String())
	}
	t := experiments.NewTable("Cost matrix (per-subpath minimum starred)", header...)
	for _, ab := range m.Rows() {
		name := experiments.SubpathName(ps, ab[0], ab[1])
		_, minV := m.MinCost(ab[0], ab[1])
		row := []interface{}{name}
		for _, org := range m.Orgs {
			v, _ := m.Cell(ab[0], ab[1], org)
			cell := fmt.Sprintf("%.2f", v)
			if v == minV {
				cell += " *"
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	fmt.Println(t.Render())
	fmt.Printf("Optimal index configuration: %s\n", res.Best)
	for _, a := range res.Best.Assignments {
		sp, _ := ps.Path.SubPath(a.A, a.B)
		v, _ := m.Cell(a.A, a.B, a.Org)
		fmt.Printf("  %-40s %-4s cost %.2f\n", sp, a.Org, v)
	}
	fmt.Printf("Total processing cost: %.2f\n", res.Best.Cost)
	wholeOrg, whole := m.MinCost(1, ps.Len())
	fmt.Printf("Best whole-path single index: %s at %.2f  (split saves %.1f%%)\n",
		wholeOrg, whole, 100*(whole-res.Best.Cost)/whole)
	fmt.Printf("Configurations evaluated: %d of %d (branch-and-bound pruned %d prefixes)\n",
		res.Stats.Evaluated, res.Stats.TotalConfigurations, res.Stats.Pruned)
}
