// Command ixbench regenerates the paper's figures and tables plus the
// extension experiments documented in DESIGN.md:
//
//	ixbench -run all          # everything
//	ixbench -run fig6         # Figure 6 walkthrough (Section 5)
//	ixbench -run fig8         # Figures 7/8, Example 5.1
//	ixbench -run complexity   # Section 5 complexity claims (C1)
//	ixbench -run validate     # analytic vs measured page accesses (V1)
//	ixbench -run workload     # workload-mix sweep (W1)
//	ixbench -run sweep        # path-length sweep (S1)
//	ixbench -run extended     # PX/NX/NONE extended organizations (X1)
//	ixbench -run selectivity  # range-predicate sweep (R1)
//	ixbench -run buffer       # buffer-pool ablation (B1)
//	ixbench -run reconfig     # online reconfiguration under drift (E1)
//	ixbench -run serve        # serving throughput under concurrency (E2);
//	                          # emits BENCH_serve.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "experiment to run: all|fig6|fig8|complexity|validate|workload|sweep|extended|selectivity|buffer|reconfig|serve")
	maxN := flag.Int("maxn", 10, "maximum path length for complexity/sweep experiments")
	trials := flag.Int("trials", 20, "random matrices per length in the complexity experiment")
	seed := flag.Int64("seed", 42, "random seed for generated databases and matrices")
	serveOps := flag.Int("serve-ops", 2000, "operations per worker in the serve experiment")
	serveOut := flag.String("serve-out", "BENCH_serve.json", "output file for the serve experiment's JSON report")
	flag.Parse()

	if err := runExperiments(*run, *maxN, *trials, *seed, *serveOps, *serveOut); err != nil {
		fmt.Fprintln(os.Stderr, "ixbench:", err)
		os.Exit(1)
	}
}

func runExperiments(which string, maxN, trials int, seed int64, serveOps int, serveOut string) error {
	want := func(name string) bool { return which == "all" || which == name }
	ran := false

	if want("fig6") {
		ran = true
		section("F6 — Figure 6 walkthrough")
		fmt.Println(experiments.RunFig6().Render())
	}
	if want("fig8") {
		ran = true
		section("F7/F8 — Example 5.1 (Figures 7 and 8)")
		rep, err := experiments.RunFig8()
		if err != nil {
			return err
		}
		fmt.Println(rep.Render())
	}
	if want("complexity") {
		ran = true
		section("C1 — Section 5 complexity claims")
		fmt.Println(experiments.RunComplexity(maxN, trials, seed).Render())
	}
	if want("validate") {
		ran = true
		section("V1 — cost model vs working indexes")
		rep, err := experiments.RunValidation(seed)
		if err != nil {
			return err
		}
		fmt.Println(rep.Render())
	}
	if want("workload") {
		ran = true
		section("W1 — workload-mix sweep")
		rep, err := experiments.RunWorkloadSweep([]float64{0, 0.25, 0.5, 0.75, 1})
		if err != nil {
			return err
		}
		fmt.Println(rep.Render())
	}
	if want("sweep") {
		ran = true
		section("S1 — path-length sweep")
		rep, err := experiments.RunShapeSweep(maxN)
		if err != nil {
			return err
		}
		fmt.Println(rep.Render())
	}
	if want("extended") {
		ran = true
		section("X1 — extended organizations (PX/NX/NONE, Section 6)")
		rep, err := experiments.RunExtended()
		if err != nil {
			return err
		}
		fmt.Println(rep.Render())
	}
	if want("selectivity") {
		ran = true
		section("R1 — range-predicate selectivity sweep")
		rep, err := experiments.RunSelectivitySweep([]float64{0, 0.001, 0.01, 0.05, 0.2})
		if err != nil {
			return err
		}
		fmt.Println(rep.Render())
	}
	if want("buffer") {
		ran = true
		section("B1 — buffer-pool ablation")
		rep, err := experiments.RunBufferAblation(2000, 5000, []int{0, 4, 16, 64})
		if err != nil {
			return err
		}
		fmt.Println(rep.Render())
	}
	if want("reconfig") {
		ran = true
		section("E1 — online reconfiguration under workload drift")
		rep, err := experiments.RunReconfigure(seed)
		if err != nil {
			return err
		}
		fmt.Println(rep.Render())
	}
	if want("serve") {
		ran = true
		section("E2 — serving throughput under concurrency")
		rep, err := experiments.RunServe(seed, []int{1, 2, 4, 8}, serveOps)
		if err != nil {
			return err
		}
		fmt.Println(rep.Render())
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(serveOut, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", serveOut)
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", which)
	}
	return nil
}

func section(title string) {
	fmt.Println(strings.Repeat("=", 72))
	fmt.Println(title)
	fmt.Println(strings.Repeat("=", 72))
}
