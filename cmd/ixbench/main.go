// Command ixbench regenerates the paper's figures and tables plus the
// extension experiments documented in DESIGN.md:
//
//	ixbench -run all          # everything
//	ixbench -run fig6         # Figure 6 walkthrough (Section 5)
//	ixbench -run fig8         # Figures 7/8, Example 5.1
//	ixbench -run complexity   # Section 5 complexity claims (C1)
//	ixbench -run validate     # analytic vs measured page accesses (V1)
//	ixbench -run workload     # workload-mix sweep (W1)
//	ixbench -run sweep        # path-length sweep (S1)
//	ixbench -run extended     # PX/NX/NONE extended organizations (X1)
//	ixbench -run selectivity  # range-predicate sweep (R1)
//	ixbench -run buffer       # buffer-pool ablation (B1)
//	ixbench -run reconfig     # online reconfiguration under drift (E1)
//	ixbench -run serve        # serving throughput under concurrency (E2);
//	                          # emits BENCH_serve.json
//	ixbench -run maintain     # update maintenance cost at mixed
//	                          # read/write ratios (E3); emits
//	                          # BENCH_maintain.json
//	ixbench -run shard        # sharded serving throughput at 1/2/4/8
//	                          # shards x 1/2/4/8 workers (E4); emits
//	                          # BENCH_shard.json
//	ixbench -run durable      # durability cost: fsync policies, recovery
//	                          # time vs WAL length, cold-cache serving
//	                          # (E5); emits BENCH_wal.json
//	ixbench -run plan         # conjunctive planner: selectivity ordering
//	                          # and shard-summary pruning (E6); emits
//	                          # BENCH_plan.json
//	ixbench -run net          # networked serving: pipelined binary
//	                          # protocol with request coalescing vs the
//	                          # embedded batch kernel (E7); emits
//	                          # BENCH_net.json
//	ixbench -run netplan      # predicate trees over the wire: coalesced
//	                          # planner dispatch vs per-request dispatch
//	                          # vs the embedded planner (E8); emits
//	                          # BENCH_netplan.json
//	ixbench -run feedback     # workload-fed selection vs the static
//	                          # design-time selection under a skewed
//	                          # recorded mix (E9); emits
//	                          # BENCH_feedback.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

// modes maps each -run mode to its one-line description, in display order.
var modes = []struct{ name, desc string }{
	{"all", "run every experiment below"},
	{"fig6", "Figure 6 walkthrough of the Section 5 selection (F6)"},
	{"fig8", "Example 5.1 with the Figure 7 statistics (F7/F8)"},
	{"complexity", "Section 5 complexity claims: BnB vs exhaustive vs DP (C1)"},
	{"validate", "analytic cost model vs measured page accesses (V1)"},
	{"workload", "optimal configuration across query/update mixes (W1)"},
	{"sweep", "optimal configuration across path lengths (S1)"},
	{"extended", "PX/NX/NONE extended organization columns (X1)"},
	{"selectivity", "range-predicate selectivity sweep (R1)"},
	{"buffer", "buffer-pool hit-rate ablation (B1)"},
	{"reconfig", "online reconfiguration under workload drift (E1)"},
	{"serve", "serving throughput under concurrency; emits BENCH_serve.json (E2)"},
	{"maintain", "update maintenance cost at mixed read/write ratios; emits BENCH_maintain.json (E3)"},
	{"shard", "sharded serving throughput at 1/2/4/8 shards x 1/2/4/8 workers; emits BENCH_shard.json (E4)"},
	{"durable", "durability cost: fsync policies, recovery time, cold-cache serving; emits BENCH_wal.json (E5)"},
	{"plan", "conjunctive planner: selectivity ordering and shard-summary pruning; emits BENCH_plan.json (E6)"},
	{"net", "networked serving: pipelined+coalesced wire protocol vs embedded at 1/8/64/256 connections; emits BENCH_net.json (E7)"},
	{"netplan", "predicate trees over the wire: coalesced planner dispatch vs per-request vs embedded at 1/8/64 connections; emits BENCH_netplan.json (E8)"},
	{"feedback", "workload-fed vs static selection under a skewed recorded mix; emits BENCH_feedback.json (E9)"},
}

func usage() {
	w := flag.CommandLine.Output()
	fmt.Fprintln(w, "ixbench regenerates the paper's figures and the repository's measured")
	fmt.Fprintln(w, "experiments (see DESIGN.md for the experiment index).")
	fmt.Fprintln(w, "\nUsage:\n\n\tixbench [-run mode] [flags]\n\nModes:")
	for _, m := range modes {
		fmt.Fprintf(w, "\t%-12s %s\n", m.name, m.desc)
	}
	fmt.Fprintln(w, "\nFlags:")
	flag.PrintDefaults()
}

func main() {
	var names []string
	for _, m := range modes {
		names = append(names, m.name)
	}
	run := flag.String("run", "all", "experiment to run: "+strings.Join(names, "|"))
	maxN := flag.Int("maxn", 10, "maximum path length for complexity/sweep experiments")
	trials := flag.Int("trials", 20, "random matrices per length in the complexity experiment")
	seed := flag.Int64("seed", 42, "random seed for generated databases and matrices")
	serveOps := flag.Int("serve-ops", 2000, "operations per worker in the serve experiment")
	serveOut := flag.String("serve-out", "BENCH_serve.json", "output file for the serve experiment's JSON report")
	maintainOps := flag.Int("maintain-ops", 4000, "operations per cell in the maintain experiment")
	maintainOut := flag.String("maintain-out", "BENCH_maintain.json", "output file for the maintain experiment's JSON report")
	shardOps := flag.Int("shard-ops", 4000, "operations per worker in the shard experiment")
	shardOut := flag.String("shard-out", "BENCH_shard.json", "output file for the shard experiment's JSON report")
	durableOps := flag.Int("durable-ops", 3000, "base write-operation count in the durable experiment")
	durableOut := flag.String("durable-out", "BENCH_wal.json", "output file for the durable experiment's JSON report")
	planOps := flag.Int("plan-ops", 2000, "operations per arm in the plan experiment")
	planOut := flag.String("plan-out", "BENCH_plan.json", "output file for the plan experiment's JSON report")
	netOps := flag.Int("net-ops", 2000, "operations per connection in the net experiment")
	netOut := flag.String("net-out", "BENCH_net.json", "output file for the net experiment's JSON report")
	netplanOps := flag.Int("netplan-ops", 1000, "operations per connection in the netplan experiment")
	netplanOut := flag.String("netplan-out", "BENCH_netplan.json", "output file for the netplan experiment's JSON report")
	feedbackOps := flag.Int("feedback-ops", 2000, "measured operations per arm in the feedback experiment")
	feedbackOut := flag.String("feedback-out", "BENCH_feedback.json", "output file for the feedback experiment's JSON report")
	flag.Usage = usage
	flag.Parse()

	if err := runExperiments(*run, *maxN, *trials, *seed, *serveOps, *serveOut, *maintainOps, *maintainOut, *shardOps, *shardOut, *durableOps, *durableOut, *planOps, *planOut, *netOps, *netOut, *netplanOps, *netplanOut, *feedbackOps, *feedbackOut); err != nil {
		fmt.Fprintln(os.Stderr, "ixbench:", err)
		os.Exit(1)
	}
}

func runExperiments(which string, maxN, trials int, seed int64, serveOps int, serveOut string, maintainOps int, maintainOut string, shardOps int, shardOut string, durableOps int, durableOut string, planOps int, planOut string, netOps int, netOut string, netplanOps int, netplanOut string, feedbackOps int, feedbackOut string) error {
	want := func(name string) bool { return which == "all" || which == name }
	ran := false

	if want("fig6") {
		ran = true
		section("F6 — Figure 6 walkthrough")
		fmt.Println(experiments.RunFig6().Render())
	}
	if want("fig8") {
		ran = true
		section("F7/F8 — Example 5.1 (Figures 7 and 8)")
		rep, err := experiments.RunFig8()
		if err != nil {
			return err
		}
		fmt.Println(rep.Render())
	}
	if want("complexity") {
		ran = true
		section("C1 — Section 5 complexity claims")
		fmt.Println(experiments.RunComplexity(maxN, trials, seed).Render())
	}
	if want("validate") {
		ran = true
		section("V1 — cost model vs working indexes")
		rep, err := experiments.RunValidation(seed)
		if err != nil {
			return err
		}
		fmt.Println(rep.Render())
	}
	if want("workload") {
		ran = true
		section("W1 — workload-mix sweep")
		rep, err := experiments.RunWorkloadSweep([]float64{0, 0.25, 0.5, 0.75, 1})
		if err != nil {
			return err
		}
		fmt.Println(rep.Render())
	}
	if want("sweep") {
		ran = true
		section("S1 — path-length sweep")
		rep, err := experiments.RunShapeSweep(maxN)
		if err != nil {
			return err
		}
		fmt.Println(rep.Render())
	}
	if want("extended") {
		ran = true
		section("X1 — extended organizations (PX/NX/NONE, Section 6)")
		rep, err := experiments.RunExtended()
		if err != nil {
			return err
		}
		fmt.Println(rep.Render())
	}
	if want("selectivity") {
		ran = true
		section("R1 — range-predicate selectivity sweep")
		rep, err := experiments.RunSelectivitySweep([]float64{0, 0.001, 0.01, 0.05, 0.2})
		if err != nil {
			return err
		}
		fmt.Println(rep.Render())
	}
	if want("buffer") {
		ran = true
		section("B1 — buffer-pool ablation")
		rep, err := experiments.RunBufferAblation(2000, 5000, []int{0, 4, 16, 64})
		if err != nil {
			return err
		}
		fmt.Println(rep.Render())
	}
	if want("reconfig") {
		ran = true
		section("E1 — online reconfiguration under workload drift")
		rep, err := experiments.RunReconfigure(seed)
		if err != nil {
			return err
		}
		fmt.Println(rep.Render())
	}
	if want("serve") {
		ran = true
		section("E2 — serving throughput under concurrency")
		rep, err := experiments.RunServe(seed, []int{1, 2, 4, 8}, serveOps)
		if err != nil {
			return err
		}
		fmt.Println(rep.Render())
		if err := writeJSON(serveOut, rep); err != nil {
			return err
		}
	}
	if want("maintain") {
		ran = true
		section("E3 — update maintenance cost at mixed read/write ratios")
		rep, err := experiments.RunMaintain(seed, []float64{0.9, 0.5, 0.1}, maintainOps)
		if err != nil {
			return err
		}
		fmt.Println(rep.Render())
		if err := writeJSON(maintainOut, rep); err != nil {
			return err
		}
	}
	if want("shard") {
		ran = true
		section("E4 — sharded serving throughput")
		rep, err := experiments.RunShard(seed, []int{1, 2, 4, 8}, []int{1, 2, 4, 8}, shardOps)
		if err != nil {
			return err
		}
		fmt.Println(rep.Render())
		if err := writeJSON(shardOut, rep); err != nil {
			return err
		}
	}
	if want("durable") {
		ran = true
		section("E5 — durability cost (fsync policies, recovery, cold cache)")
		rep, err := experiments.RunDurable(seed, durableOps)
		if err != nil {
			return err
		}
		fmt.Println(rep.Render())
		if err := writeJSON(durableOut, rep); err != nil {
			return err
		}
	}
	if want("plan") {
		ran = true
		section("E6 — conjunctive planner: ordering and shard pruning")
		rep, err := experiments.RunPlan(seed, planOps)
		if err != nil {
			return err
		}
		fmt.Println(rep.Render())
		if err := writeJSON(planOut, rep); err != nil {
			return err
		}
	}
	if want("net") {
		ran = true
		section("E7 — networked serving: pipelining and request coalescing")
		rep, err := experiments.RunNet(seed, []int{1, 8, 64, 256}, netOps)
		if err != nil {
			return err
		}
		fmt.Println(rep.Render())
		if err := writeJSON(netOut, rep); err != nil {
			return err
		}
	}
	if want("netplan") {
		ran = true
		section("E8 — predicate dispatch over the wire")
		rep, err := experiments.RunNetPlan(seed, []int{1, 8, 64}, netplanOps)
		if err != nil {
			return err
		}
		fmt.Println(rep.Render())
		if err := writeJSON(netplanOut, rep); err != nil {
			return err
		}
	}
	if want("feedback") {
		ran = true
		section("E9 — workload-fed vs static selection")
		rep, err := experiments.RunFeedback(seed, feedbackOps)
		if err != nil {
			return err
		}
		fmt.Println(rep.Render())
		if err := writeJSON(feedbackOut, rep); err != nil {
			return err
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (run `ixbench -h` for the mode list)", which)
	}
	return nil
}

func writeJSON(path string, rep any) error {
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func section(title string) {
	fmt.Println(strings.Repeat("=", 72))
	fmt.Println(title)
	fmt.Println(strings.Repeat("=", 72))
}
